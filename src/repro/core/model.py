"""AOVLIS facade: the end-to-end anomaly detection system of the paper.

:class:`AOVLIS` ties the pieces together behind a small public API:

* feature extraction (optional — users can also pass pre-extracted
  :class:`~repro.features.pipeline.StreamFeatures`);
* CLSTM training on the normal segments of a training stream;
* REIA scoring and thresholded detection on test streams;
* incremental model maintenance over incoming stream chunks.

It implements :class:`~repro.core.base.StreamAnomalyDetector`, so the
evaluation harness treats it exactly like the baselines.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from ..features.pipeline import FeaturePipeline, StreamFeatures
from ..streams.events import SocialVideoStream
from ..utils.config import DetectionConfig, TrainingConfig, UpdateConfig
from .base import ScoredStream, StreamAnomalyDetector
from .clstm import CLSTM, CouplingMode
from .detector import AnomalyDetector, DetectionResult
from .training import CLSTMTrainer, TrainingHistory
from .update import IncrementalUpdater, UpdateDecision

__all__ = ["AOVLIS"]


class AOVLIS(StreamAnomalyDetector):
    """Anomaly detection Over social Video LIve Streaming.

    Parameters
    ----------
    sequence_length:
        History length q of the CLSTM input sequences (9 in the paper).
    action_hidden / interaction_hidden:
        Hidden sizes of ``LSTM_I`` and ``LSTM_A``.
    coupling:
        ``"both"`` for the full CLSTM (default), ``"influencer_to_audience"``
        for CLSTM-S, ``"none"`` for two uncoupled LSTMs.
    training / detection / update:
        Configuration dataclasses; sensible paper defaults are used when
        omitted.
    pipeline:
        Optional :class:`FeaturePipeline` enabling the stream-level
        convenience methods (:meth:`fit_stream`, :meth:`score`); required only
        when raw :class:`SocialVideoStream` objects are passed instead of
        pre-extracted features.
    seed:
        Model initialisation seed.
    """

    name = "CLSTM"

    def __init__(
        self,
        sequence_length: int = 9,
        action_hidden: int = 64,
        interaction_hidden: int = 32,
        coupling: CouplingMode = "both",
        training: TrainingConfig | None = None,
        detection: DetectionConfig | None = None,
        update: UpdateConfig | None = None,
        pipeline: FeaturePipeline | None = None,
        seed: int = 0,
    ) -> None:
        if sequence_length < 1:
            raise ValueError("sequence_length must be positive")
        self.sequence_length = sequence_length
        self.action_hidden = action_hidden
        self.interaction_hidden = interaction_hidden
        self.coupling = coupling
        self.training_config = training if training is not None else TrainingConfig()
        self.detection_config = detection if detection is not None else DetectionConfig()
        self.update_config = update if update is not None else UpdateConfig()
        self.pipeline = pipeline
        self.seed = seed

        self.model: Optional[CLSTM] = None
        self.detector: Optional[AnomalyDetector] = None
        self.updater: Optional[IncrementalUpdater] = None
        self.history: Optional[TrainingHistory] = None
        if coupling == "influencer_to_audience":
            self.name = "CLSTM-S"

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(self, features: StreamFeatures) -> "AOVLIS":
        """Train the CLSTM on the normal segments of ``features``.

        Anomalous segments (per the simulator's ground truth) are excluded
        from training — the paper trains only on normal data — but their
        reconstruction error is tracked for the epoch-effect analysis.
        """
        self.model = CLSTM(
            action_dim=features.action_dim,
            interaction_dim=features.interaction_dim,
            action_hidden=self.action_hidden,
            interaction_hidden=self.interaction_hidden,
            coupling=self.coupling,
            seed=self.seed,
        )
        batch = features.sequences(self.sequence_length)
        labels = features.sequence_labels(self.sequence_length)
        normal = batch.subset(labels == 0)
        anomalous = batch.subset(labels == 1)
        if len(normal) == 0:
            raise ValueError("training stream contains no normal sequences")
        trainer = CLSTMTrainer(self.model, self.training_config)
        self.history = trainer.fit(normal, anomalous_sequences=anomalous if len(anomalous) else None)

        self.detector = AnomalyDetector(self.model, self.detection_config)
        self.detector.calibrate(normal)

        self.updater = IncrementalUpdater(
            self.model,
            sequence_length=self.sequence_length,
            update_config=self.update_config,
            training_config=self.training_config,
        )
        self.updater.initialise_history(features)
        return self

    def fit_stream(self, stream: SocialVideoStream) -> "AOVLIS":
        """Extract features with the attached pipeline and train on them."""
        return self.fit(self._extract(stream))

    # ------------------------------------------------------------------ #
    # Scoring and detection
    # ------------------------------------------------------------------ #
    def score_stream(self, features: StreamFeatures) -> ScoredStream:
        """REIA scores for every scoreable segment of ``features``."""
        result = self.detect(features)
        return ScoredStream(segment_indices=result.segment_indices, scores=result.scores)

    def detect(self, features: StreamFeatures) -> DetectionResult:
        """Full detection result (scores, per-branch errors, decisions)."""
        self._require_fitted()
        batch = features.sequences(self.sequence_length)
        return self.detector.score(batch)

    def score(self, stream: SocialVideoStream) -> ScoredStream:
        """Convenience: extract features from a raw stream and score them."""
        return self.score_stream(self._extract(stream))

    def detect_stream(self, stream: SocialVideoStream) -> DetectionResult:
        """Convenience: extract features from a raw stream and detect anomalies."""
        return self.detect(self._extract(stream))

    # ------------------------------------------------------------------ #
    # Dynamic maintenance
    # ------------------------------------------------------------------ #
    def process_incoming(self, features: StreamFeatures) -> List[UpdateDecision]:
        """Run the incremental-update logic over an incoming stream chunk."""
        self._require_fitted()
        return self.updater.process_chunk(features)

    def process_incoming_stream(self, stream: SocialVideoStream) -> List[UpdateDecision]:
        """Convenience wrapper of :meth:`process_incoming` for raw streams."""
        return self.process_incoming(self._extract(stream))

    @property
    def anomaly_threshold(self) -> Optional[float]:
        """The calibrated anomaly threshold T_a (None before fitting)."""
        return self.detector.anomaly_threshold if self.detector is not None else None

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _extract(self, stream: SocialVideoStream) -> StreamFeatures:
        if self.pipeline is None:
            raise RuntimeError(
                "no FeaturePipeline attached; construct AOVLIS(pipeline=...) to work on raw streams"
            )
        return self.pipeline.extract(stream)

    def _require_fitted(self) -> None:
        if self.model is None or self.detector is None:
            raise RuntimeError("AOVLIS must be fitted before scoring or updating")
