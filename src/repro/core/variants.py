"""CLSTM ablation variants evaluated in the paper.

Two ablations accompany the full CLSTM in every effectiveness experiment
(Fig. 9b, Fig. 10, Table IV):

* **LSTM** — a single LSTM over the action-recognition features only; the
  audience is ignored entirely.  Scores are the JS reconstruction error of
  the action feature (there is no interaction branch).
* **CLSTM-S** — the coupled model with only one coupling direction: the
  audience layer sees the influencer's hidden state, but the influencer layer
  does not see the audience's.  This isolates the value of the full mutual
  coupling.

Both are thin configurations of the machinery in :mod:`repro.core.clstm`; the
classes below wrap them in the common :class:`StreamAnomalyDetector`
interface.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..features.pipeline import StreamFeatures
from ..features.sequences import SequenceBatch
from ..nn.backprop import (
    js_loss_grad,
    lstm_backward,
    lstm_forward_cached,
    softmax_head_backward,
    softmax_head_forward,
)
from ..nn.recurrent import LSTMCell, run_lstm
from ..nn.tensor import Tensor
from ..utils.config import DetectionConfig, TrainingConfig
from .base import ScoredStream, StreamAnomalyDetector
from .clstm import CLSTM
from .detector import AnomalyDetector
from .scoring import action_reconstruction_error
from .training import CLSTMTrainer

__all__ = ["LSTMOnlyDetector", "CLSTMSingleCouplingDetector", "make_clstm_variant"]


def make_clstm_variant(
    action_dim: int,
    interaction_dim: int,
    variant: str,
    action_hidden: int = 64,
    interaction_hidden: int = 32,
    seed: int = 0,
) -> CLSTM:
    """Instantiate a CLSTM with the coupling mode of a named variant.

    ``variant`` is one of ``"clstm"`` (two-way), ``"clstm-s"`` (one-way) or
    ``"uncoupled"`` (no coupling).
    """
    mapping = {
        "clstm": "both",
        "clstm-s": "influencer_to_audience",
        "uncoupled": "none",
    }
    key = variant.lower()
    if key not in mapping:
        raise ValueError(f"unknown CLSTM variant '{variant}'; options: {sorted(mapping)}")
    return CLSTM(
        action_dim=action_dim,
        interaction_dim=interaction_dim,
        action_hidden=action_hidden,
        interaction_hidden=interaction_hidden,
        coupling=mapping[key],
        seed=seed,
    )


class _LSTMOnlyModel(nn.Module):
    """Single-stream LSTM with a softmax decoder over action features."""

    def __init__(self, action_dim: int, hidden_size: int, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.cell = LSTMCell(action_dim, hidden_size, rng=rng)
        self.decoder = nn.Sequential(nn.Linear(hidden_size, action_dim, rng=rng), nn.SoftmaxHead())

    def forward(self, action_sequences) -> Tensor:
        hiddens, state = run_lstm(self.cell, Tensor.ensure(action_sequences))
        return self.decoder(state[0])

    def fused_training_step(self, action_sequences: np.ndarray, action_targets: np.ndarray) -> float:
        """One tape-free training step on the JS reconstruction loss.

        Mirrors ``js_divergence_loss(self(x), targets).backward()`` but runs
        the cached fused forward and the analytic BPTT
        (:mod:`repro.nn.backprop`).  Gradients accumulate into ``.grad``; the
        JS loss value is returned.
        """
        final_hidden, cache = lstm_forward_cached(self.cell, np.asarray(action_sequences))
        softmax_out, linear = softmax_head_forward(self.decoder, final_hidden)
        loss, d_softmax = js_loss_grad(softmax_out, np.asarray(action_targets, dtype=np.float64))
        d_final_hidden = softmax_head_backward(linear, final_hidden, softmax_out, d_softmax)
        lstm_backward(self.cell, cache, d_final_hidden)
        return loss


class LSTMOnlyDetector(StreamAnomalyDetector):
    """The paper's "LSTM" competitor: action features only, no audience."""

    name = "LSTM"

    def __init__(
        self,
        sequence_length: int = 9,
        hidden_size: int = 64,
        training: TrainingConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.sequence_length = sequence_length
        self.hidden_size = hidden_size
        self.training = training if training is not None else TrainingConfig()
        self.seed = seed
        self._model: Optional[_LSTMOnlyModel] = None

    def fit(self, features: StreamFeatures) -> "LSTMOnlyDetector":
        batch = features.sequences(self.sequence_length)
        labels = features.sequence_labels(self.sequence_length)
        normal = batch.subset(labels == 0)
        if len(normal) == 0:
            raise ValueError("no normal sequences available for training")
        self._model = _LSTMOnlyModel(features.action_dim, self.hidden_size, seed=self.seed)
        self._train(normal)
        return self

    def score_stream(self, features: StreamFeatures) -> ScoredStream:
        if self._model is None:
            raise RuntimeError("fit() must be called before score_stream()")
        batch = features.sequences(self.sequence_length)
        with nn.no_grad():
            reconstruction = self._model(batch.action_sequences).numpy()
        scores = action_reconstruction_error(batch.action_targets, reconstruction)
        return ScoredStream(segment_indices=batch.target_indices, scores=scores)

    # ------------------------------------------------------------------ #
    def _train(self, batch: SequenceBatch) -> None:
        config = self.training
        # As in CLSTMTrainer.fit: the flat-buffer optimiser belongs to the
        # fused engine; use_fused=False keeps the exact pre-fused tape setup.
        optimizer = nn.Adam(
            self._model.parameters(), lr=config.learning_rate, flat=config.use_fused
        )
        rng = np.random.default_rng(config.seed)
        for _ in range(config.epochs):
            order = rng.permutation(len(batch))
            for start in range(0, len(batch), config.batch_size):
                indices = order[start : start + config.batch_size]
                mini = batch.subset(indices)
                if config.use_fused:
                    optimizer.zero_grad()
                    self._model.fused_training_step(mini.action_sequences, mini.action_targets)
                else:
                    reconstruction = self._model(mini.action_sequences)
                    loss = nn.js_divergence_loss(reconstruction, nn.Tensor(mini.action_targets))
                    optimizer.zero_grad()
                    loss.backward()
                nn.clip_grad_norm(self._model.parameters(), config.gradient_clip)
                optimizer.step()


class CLSTMSingleCouplingDetector(StreamAnomalyDetector):
    """The paper's "CLSTM-S" ablation (influencer -> audience coupling only)."""

    name = "CLSTM-S"

    def __init__(
        self,
        sequence_length: int = 9,
        action_hidden: int = 64,
        interaction_hidden: int = 32,
        training: TrainingConfig | None = None,
        detection: DetectionConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.sequence_length = sequence_length
        self.action_hidden = action_hidden
        self.interaction_hidden = interaction_hidden
        self.training = training if training is not None else TrainingConfig()
        self.detection = detection if detection is not None else DetectionConfig()
        self.seed = seed
        self._detector: Optional[AnomalyDetector] = None

    def fit(self, features: StreamFeatures) -> "CLSTMSingleCouplingDetector":
        model = make_clstm_variant(
            features.action_dim,
            features.interaction_dim,
            "clstm-s",
            action_hidden=self.action_hidden,
            interaction_hidden=self.interaction_hidden,
            seed=self.seed,
        )
        batch = features.sequences(self.sequence_length)
        labels = features.sequence_labels(self.sequence_length)
        normal = batch.subset(labels == 0)
        if len(normal) == 0:
            raise ValueError("no normal sequences available for training")
        CLSTMTrainer(model, self.training).fit(normal)
        self._detector = AnomalyDetector(model, self.detection)
        self._detector.calibrate(normal)
        return self

    def score_stream(self, features: StreamFeatures) -> ScoredStream:
        if self._detector is None:
            raise RuntimeError("fit() must be called before score_stream()")
        batch = features.sequences(self.sequence_length)
        result = self._detector.score(batch)
        return ScoredStream(segment_indices=result.segment_indices, scores=result.scores)
