"""Anomaly identification on top of a trained CLSTM.

The detector turns CLSTM predictions into REIA anomaly scores (Eq. 16),
calibrates the anomaly threshold ``T_a`` from the scores of the (normal)
training data, and labels or ranks incoming segments.  The paper's efficiency
optimisations (ADG bounds + ADOS) plug in through
:mod:`repro.optimization.ados`; this module is the exact, unfiltered scorer
they must agree with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..features.sequences import SequenceBatch
from ..utils.config import DetectionConfig
from .clstm import CLSTM
from .scoring import (
    action_reconstruction_error,
    interaction_reconstruction_error,
)

__all__ = ["DetectionResult", "AnomalyDetector"]


@dataclass(frozen=True)
class DetectionResult:
    """Scores and decisions for a batch of segments.

    Attributes
    ----------
    segment_indices:
        Stream indices of the scored segments.
    scores:
        REIA anomaly scores.
    action_errors / interaction_errors:
        The two components of the score (RE_I and RE_A).
    is_anomaly:
        Boolean decisions under the calibrated threshold (or top-k rule).
    threshold:
        The threshold used for the decisions (NaN when top-k ranking is used).
    """

    segment_indices: np.ndarray
    scores: np.ndarray
    action_errors: np.ndarray
    interaction_errors: np.ndarray
    is_anomaly: np.ndarray
    threshold: float

    def top(self, k: int) -> np.ndarray:
        """Indices (into the stream) of the k highest-scoring segments."""
        if k <= 0:
            raise ValueError("k must be positive")
        order = np.argsort(self.scores)[::-1][:k]
        return self.segment_indices[order]

    def __len__(self) -> int:
        return len(self.scores)


class AnomalyDetector:
    """REIA-based anomaly detector around a trained CLSTM."""

    def __init__(
        self,
        model: CLSTM,
        config: DetectionConfig | None = None,
        *,
        threshold: Optional[float] = None,
    ) -> None:
        self.model = model
        self.config = config if config is not None else DetectionConfig()
        # An explicit construction-time threshold wins over the config's: the
        # registry publishes detectors already bound to their calibrated T_a.
        self.anomaly_threshold: Optional[float] = (
            float(threshold) if threshold is not None else self.config.threshold
        )
        self._calibration_scores: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def score(self, batch: SequenceBatch, precision: Optional[str] = None) -> DetectionResult:
        """Score every sequence in ``batch`` and apply the current threshold."""
        return self.score_arrays(
            batch.action_sequences,
            batch.interaction_sequences,
            batch.action_targets,
            batch.interaction_targets,
            batch.target_indices,
            precision=precision,
        )

    def score_arrays(
        self,
        action_sequences: np.ndarray,
        interaction_sequences: np.ndarray,
        action_targets: np.ndarray,
        interaction_targets: np.ndarray,
        segment_indices: np.ndarray,
        precision: Optional[str] = None,
    ) -> DetectionResult:
        """Score raw sequence arrays in one fused batched forward pass.

        This is the array-level twin of :meth:`score`, used by callers that
        assemble batches themselves (the micro-batching scoring service
        coalesces sequences from many concurrent streams into a single call).
        ``precision`` overrides the model's compute precision for the forward
        (``None`` defers to the model; threshold calibration always pins
        ``"float64"``).
        """
        if len(action_sequences) == 0:
            empty = np.zeros(0)
            return DetectionResult(
                segment_indices=np.zeros(0, dtype=np.int64),
                scores=empty,
                action_errors=empty,
                interaction_errors=empty,
                is_anomaly=np.zeros(0, dtype=bool),
                threshold=self.anomaly_threshold if self.anomaly_threshold is not None else float("nan"),
            )
        predicted_action, predicted_interaction = self.model.predict(
            action_sequences, interaction_sequences, precision=precision
        )
        return self.score_predictions(
            segment_indices,
            action_targets,
            interaction_targets,
            predicted_action,
            predicted_interaction,
        )

    def score_predictions(
        self,
        segment_indices: np.ndarray,
        action_targets: np.ndarray,
        interaction_targets: np.ndarray,
        predicted_action: np.ndarray,
        predicted_interaction: np.ndarray,
    ) -> DetectionResult:
        """Score precomputed model predictions and apply the threshold.

        Single home of the REIA combination (Eq. 16) on the detection path:
        used by :meth:`score_arrays` after its own forward pass, and by the
        serving scheduler, which shares one ``predict_full`` pass between
        scoring and drift detection.
        """
        action_errors = action_reconstruction_error(action_targets, predicted_action)
        interaction_errors = interaction_reconstruction_error(
            interaction_targets, predicted_interaction
        )
        # REIA (Eq. 16) from the errors already in hand — calling reia_score
        # here would recompute both divergences, doubling the dominant cost.
        omega = self.config.omega
        scores = omega * action_errors + (1.0 - omega) * interaction_errors
        return self._decide(segment_indices, scores, action_errors, interaction_errors)

    def score_values(self, batch: SequenceBatch) -> np.ndarray:
        """Convenience: only the REIA scores of ``batch``."""
        return self.score(batch).scores

    # ------------------------------------------------------------------ #
    # Threshold calibration
    # ------------------------------------------------------------------ #
    def calibrate(self, batch: SequenceBatch, quantile: float = 0.98) -> float:
        """Calibrate the anomaly threshold ``T_a`` from (normal) training data.

        The paper selects the optimal threshold per dataset by sweeping
        ``tau`` in (0, 1); operationally we set it to a high quantile of the
        training scores, which is the standard reconstruction-error practice
        and gives the same detection behaviour on the simulated data.  The
        explicit ``DetectionConfig.threshold`` always wins when provided.
        """
        return self._derive_threshold(batch, quantile, honour_config=True)

    def recalibrate(self, batch: SequenceBatch, quantile: float = 0.98) -> float:
        """Re-derive ``T_a`` from fresh presumed-normal data.

        This is the online-maintenance twin of :meth:`calibrate`: after an
        incremental model update the old threshold was calibrated against the
        *old* model's score distribution, so the update plane re-scores the
        buffered presumed-normal segments through the updated model and takes
        the same high quantile.  Unlike :meth:`calibrate`, an explicit
        ``DetectionConfig.threshold`` does **not** override the result — the
        caller decides whether a pinned threshold stays authoritative.
        """
        return self._derive_threshold(batch, quantile, honour_config=False)

    def _derive_threshold(
        self, batch: SequenceBatch, quantile: float, honour_config: bool
    ) -> float:
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        # Threshold calibration is always full precision: T_a anchors every
        # downstream decision, so a reduced-precision serving configuration
        # must not perturb it (the float32 accuracy contract is defined
        # *relative to* the float64-calibrated threshold).
        result = self.score(batch, precision="float64")
        if len(result) == 0:
            raise ValueError("cannot calibrate on an empty batch")
        self._calibration_scores = result.scores
        if honour_config and self.config.threshold is not None:
            self.anomaly_threshold = self.config.threshold
        else:
            self.anomaly_threshold = float(np.quantile(result.scores, quantile))
        return self.anomaly_threshold

    @property
    def normal_threshold(self) -> Optional[float]:
        """``T_n = normal_threshold_ratio * T_a`` used by the bound filters."""
        if self.anomaly_threshold is None:
            return None
        return self.config.normal_threshold_ratio * self.anomaly_threshold

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _decide(
        self,
        segment_indices: np.ndarray,
        scores: np.ndarray,
        action_errors: np.ndarray,
        interaction_errors: np.ndarray,
    ) -> DetectionResult:
        if self.config.top_k is not None:
            decisions = np.zeros(len(scores), dtype=bool)
            if len(scores) > 0:
                order = np.argsort(scores)[::-1][: self.config.top_k]
                decisions[order] = True
            threshold = float("nan")
        else:
            threshold = self.anomaly_threshold
            if threshold is None:
                # Without calibration fall back to a robust statistic of the
                # scored batch itself (median + 3 * MAD).
                median = float(np.median(scores))
                mad = float(np.median(np.abs(scores - median)))
                threshold = median + 3.0 * 1.4826 * mad
            decisions = scores > threshold
        return DetectionResult(
            segment_indices=np.asarray(segment_indices, dtype=np.int64),
            scores=scores,
            action_errors=action_errors,
            interaction_errors=interaction_errors,
            is_anomaly=decisions,
            threshold=float(threshold) if threshold is not None else float("nan"),
        )
