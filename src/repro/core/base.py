"""Common interface implemented by every stream anomaly detector.

AOVLIS (CLSTM), its ablations (LSTM-only, CLSTM-S) and the literature
baselines (LTR, VEC, RTFM) all expose the same two-phase API so the
evaluation harness and the benchmarks can treat them uniformly:

* :meth:`StreamAnomalyDetector.fit` — learn the notion of "normal" from the
  training stream's features (only normal segments are used for training, as
  in the paper);
* :meth:`StreamAnomalyDetector.score_stream` — produce one anomaly score per
  scoreable segment of a test stream, together with the indices of those
  segments so the scores can be aligned with ground-truth labels.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..features.pipeline import StreamFeatures

__all__ = ["ScoredStream", "StreamAnomalyDetector"]


@dataclass(frozen=True)
class ScoredStream:
    """Per-segment anomaly scores aligned with their stream indices."""

    segment_indices: np.ndarray
    scores: np.ndarray

    def __post_init__(self) -> None:
        if len(self.segment_indices) != len(self.scores):
            raise ValueError("segment_indices and scores must have the same length")

    def __len__(self) -> int:
        return len(self.scores)

    def labels_from(self, features: StreamFeatures) -> np.ndarray:
        """Ground-truth labels aligned with these scores."""
        return features.labels[self.segment_indices]


class StreamAnomalyDetector(abc.ABC):
    """Abstract base class of all detectors compared in the evaluation."""

    #: Human-readable method name used in result tables (e.g. "CLSTM", "LTR").
    name: str = "detector"

    @abc.abstractmethod
    def fit(self, features: StreamFeatures) -> "StreamAnomalyDetector":
        """Learn normal behaviour from a training stream's features."""

    @abc.abstractmethod
    def score_stream(self, features: StreamFeatures) -> ScoredStream:
        """Score every scoreable segment of a test stream."""

    def evaluate_labels(self, features: StreamFeatures) -> tuple[np.ndarray, np.ndarray]:
        """Convenience: ``(labels, scores)`` aligned for ROC/AUROC computation."""
        scored = self.score_stream(features)
        return scored.labels_from(features), scored.scores
