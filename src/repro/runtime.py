"""Unified runtime facade: declarative config, one-call lifecycle, durable
checkpoint/restore.

The paper's system is one closed loop — ingest → CLSTM/REIA scoring →
drift-triggered incremental update → hot swap — but the library exposes it as
many loose classes that every deployment must wire by hand.  This module is
the assembled product:

* :class:`RuntimeConfig` composes the five configuration dataclasses
  (:class:`~repro.utils.config.ModelConfig`,
  :class:`~repro.utils.config.TrainingConfig`,
  :class:`~repro.utils.config.DetectionConfig`,
  :class:`~repro.utils.config.ServingConfig`,
  :class:`~repro.utils.config.UpdateConfig`) plus the runtime-level knobs,
  and round-trips through JSON — a deployment is one reviewable file.
* :class:`Runtime` owns the whole pipeline behind a small lifecycle surface:
  ``fit`` trains the CLSTM and calibrates the detector, publishing version 1
  into a :class:`~repro.serving.registry.ModelRegistry`; ``ingest``/``poll``/
  ``drain`` drive the (optionally sharded) micro-batching scoring service,
  whose attached update planes keep the model fresh; ``checkpoint`` persists
  the full runtime — every retained model version's weights via
  :mod:`repro.nn.serialization`, detector calibration, the version pointer,
  per-stream session windows, the drift monitor and queued requests — so
  :meth:`Runtime.from_checkpoint` resumes with **bitwise-identical**
  detections on a replayed stream (the crash-recovery contract).

Every class the facade builds on stays importable — ``repro.serving`` and
friends are the escape hatch for deployments the facade does not model
(e.g. one registry per shard; see ``examples/multi_stream_serving.py``).
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

import numpy as np

from .core.clstm import CLSTM
from .core.detector import AnomalyDetector
from .core.training import CLSTMTrainer, TrainingHistory
from .features.pipeline import StreamFeatures
from .nn.serialization import load_state, save_module, save_state
from .serving.executor import build_executor
from .serving.maintenance import UpdateReport
from .serving.registry import ModelRegistry
from .serving.service import (
    ManualClock,
    ServiceStats,
    ShardStats,
    StreamDetection,
    UpdateTrigger,
    replay_streams,
)
from .serving.rebalance import Rebalancer
from .serving.sharding import ShardedScoringService
from .utils.config import (
    _NESTED_CONFIGS,
    ConfigBase,
    DetectionConfig,
    ExecutorConfig,
    ModelConfig,
    ServerConfig,
    ServingConfig,
    ShardingConfig,
    TrainingConfig,
    UpdateConfig,
)

__all__ = ["RuntimeConfig", "Runtime", "CHECKPOINT_FORMAT"]

CHECKPOINT_FORMAT = 2
"""Version tag written into every checkpoint manifest.

Format 2 added ``plane_pending`` (queued-but-not-started background
retrains, persisted instead of force-executed at checkpoint time) and the
manifest's ``pending_updates`` count; format-1 checkpoints — which by
construction had nothing queued — are still readable."""

_READABLE_FORMATS = (1, 2)

_MANIFEST_FILE = "runtime.json"
_STATE_FILE = "state.npz"


@dataclass(frozen=True)
class RuntimeConfig(ConfigBase):
    """Declarative description of one complete AOVLIS deployment.

    Composes the five component configurations and adds the knobs that only
    exist at the assembled-system level.  ``to_json``/``from_json`` (from
    :class:`~repro.utils.config.ConfigBase`) make a deployment one reviewable
    JSON document; nested sections round-trip recursively and typos fail with
    the offending ``Class.field`` named.
    """

    model: ModelConfig = ModelConfig()
    """CLSTM dimensions.  ``action_dim``/``interaction_dim`` must match the
    features the runtime is fitted on (validated in :meth:`Runtime.fit`)."""

    training: TrainingConfig = TrainingConfig()
    detection: DetectionConfig = DetectionConfig()
    serving: ServingConfig = ServingConfig()
    update: UpdateConfig = UpdateConfig()

    executor: ExecutorConfig = ExecutorConfig()
    """Execution strategy: serial in-line scoring (default), or a
    worker-thread pool for shard batches (``mode="parallel"``) with optional
    off-thread retrains (``background_updates=True``).  ``mode="auto"``
    resolves through the ``REPRO_EXECUTOR`` environment variable."""

    server: ServerConfig = ServerConfig()
    """HTTP ingest tier parameters consumed by :meth:`Runtime.serve`
    (bind address, admission-control queue bound, batch/long-poll knobs)."""

    sharding: ShardingConfig = ShardingConfig()
    """Load-rebalancing policy over the shard set.  ``rebalance=True``
    attaches a :class:`~repro.serving.rebalance.Rebalancer` that diverts
    *new* streams away from hot shards and splits/merges shards under the
    configured queue-depth thresholds; the default keeps pure pinned
    CRC-32 routing, bit-for-bit the pre-rebalancer behaviour."""

    sequence_length: int = 9
    """History length q of the CLSTM input sequences."""

    coupling: str = "both"
    """CLSTM coupling mode: ``"both"``, ``"influencer_to_audience"`` or ``"none"``."""

    seed: int = 0
    """Model-initialisation seed."""

    max_versions: int | None = None
    """Keep-last-K bound on retained registry snapshots (``None`` = all)."""

    enable_updates: bool = True
    """Attach the drift monitor and update plane (the closed learning loop).
    ``False`` serves a frozen model: no buffering, no triggers, no swaps."""

    max_history: int | None = None
    """Per-shard cap on the drift monitor's historical hidden-state set."""

    def __post_init__(self) -> None:
        if self.sequence_length < 1:
            raise ValueError(
                f"RuntimeConfig.sequence_length must be positive, got {self.sequence_length}"
            )
        if self.coupling not in ("both", "influencer_to_audience", "none"):
            raise ValueError(
                f"RuntimeConfig.coupling must be 'both', 'influencer_to_audience' "
                f"or 'none', got {self.coupling!r}"
            )
        if self.max_versions is not None and self.max_versions < 1:
            raise ValueError(
                f"RuntimeConfig.max_versions must be positive when set, got {self.max_versions}"
            )
        if self.max_history is not None and self.max_history < 1:
            raise ValueError(
                f"RuntimeConfig.max_history must be positive when set, got {self.max_history}"
            )
        if self.detection.top_k is not None:
            raise ValueError(
                "RuntimeConfig.detection.top_k must be unset: top-k ranking is "
                "batch-relative and incompatible with the serving runtime"
            )


_NESTED_CONFIGS["RuntimeConfig"] = RuntimeConfig


class Runtime:
    """One-call lifecycle over the assembled online-learning system.

    ::

        cfg = RuntimeConfig.from_json("deployment.json")
        rt = Runtime.from_config(cfg).fit(train_features)
        rt.ingest("stream-1", action, interaction, level)   # -> detections
        rt.poll()                                           # deadline flushes
        rt.drain()                                          # drain all queues
        rt.checkpoint("ckpt/")                              # durable state
        rt2 = Runtime.from_checkpoint("ckpt/")              # bitwise resume

    Parameters
    ----------
    config:
        The deployment description.
    clock:
        Monotonic time source for the wall-clock flush deadlines; tests and
        replay drivers inject a :class:`~repro.serving.service.ManualClock`.
    """

    def __init__(self, config: RuntimeConfig, *, clock: Optional[Callable[[], float]] = None) -> None:
        self.config = config
        self._clock = clock
        self.registry: Optional[ModelRegistry] = None
        self.service: Optional[ShardedScoringService] = None
        self.history: Optional[TrainingHistory] = None
        self._server = None  # RuntimeServer started via serve()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_config(
        cls, config: RuntimeConfig, *, clock: Optional[Callable[[], float]] = None
    ) -> "Runtime":
        """An unfitted runtime for ``config``; call :meth:`fit` next."""
        return cls(config, clock=clock)

    @property
    def fitted(self) -> bool:
        return self.service is not None

    # ------------------------------------------------------------------ #
    # Lifecycle: fit
    # ------------------------------------------------------------------ #
    def fit(self, features: StreamFeatures) -> "Runtime":
        """Train, calibrate and stand the serving runtime up (version 1).

        Trains the CLSTM on the normal segments of ``features``, calibrates
        the anomaly threshold ``T_a``, publishes version 1 into the model
        registry, seeds the drift monitor's historical hidden-state set with
        the training hidden states, and builds the sharded scoring service
        (with attached update planes when ``enable_updates``).
        """
        self._require_open()
        if self.fitted:
            raise RuntimeError("runtime is already fitted; build a new Runtime to refit")
        config = self.config
        if features.action_dim != config.model.action_dim:
            raise ValueError(
                f"features have action_dim={features.action_dim} but "
                f"RuntimeConfig.model.action_dim={config.model.action_dim}"
            )
        if features.interaction_dim != config.model.interaction_dim:
            raise ValueError(
                f"features have interaction_dim={features.interaction_dim} but "
                f"RuntimeConfig.model.interaction_dim={config.model.interaction_dim}"
            )
        model = CLSTM.from_config(config.model, coupling=config.coupling, seed=config.seed)
        batch = features.sequences(config.sequence_length)
        labels = features.sequence_labels(config.sequence_length)
        normal = batch.subset(labels == 0)
        anomalous = batch.subset(labels == 1)
        if len(normal) == 0:
            raise ValueError("training stream contains no normal sequences")
        trainer = CLSTMTrainer(model, config.training)
        self.history = trainer.fit(
            normal, anomalous_sequences=anomalous if len(anomalous) else None
        )
        detector = AnomalyDetector(model, config.detection)
        threshold = detector.calibrate(normal)

        self.registry = ModelRegistry(config.detection, max_versions=config.max_versions)
        # The runtime owns the trained model, so the registry adopts it
        # directly (copy=False) instead of paying one more parameter copy.
        self.registry.publish(model, threshold, reason="initial", copy=False)
        historical = model.hidden_states(batch.action_sequences, batch.interaction_sequences)
        self._build_service(historical_hidden=historical)
        return self

    def _build_service(
        self,
        historical_hidden: Optional[np.ndarray],
        num_shards: Optional[int] = None,
    ) -> None:
        config = self.config
        serving = config.serving
        if num_shards is not None and num_shards != serving.num_shards:
            # Restoring a checkpoint taken after rebalancer splits: the live
            # topology (not the configured base count) is what the routes
            # and per-shard states were written against.
            serving = replace(serving, num_shards=int(num_shards))
        rebalancer = (
            Rebalancer(config.sharding, clock=self._clock)
            if config.sharding.rebalance
            else None
        )
        self.service = ShardedScoringService(
            self.registry,
            config=serving,
            sequence_length=config.sequence_length,
            update_config=config.update if config.enable_updates else None,
            attach_update_planes=config.enable_updates,
            training_config=config.training,
            historical_hidden=historical_hidden,
            max_history=config.max_history,
            clock=self._clock,
            executor=build_executor(config.executor),
            background_updates=config.executor.background_updates and config.enable_updates,
            rebalancer=rebalancer,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle: serve
    # ------------------------------------------------------------------ #
    def ingest(
        self,
        stream_id: str,
        action_feature: np.ndarray,
        interaction_feature: np.ndarray,
        interaction_level: Optional[float] = None,
    ) -> List[StreamDetection]:
        """Feed one incoming segment of one stream into the runtime.

        ``interaction_level`` must be finite when given; ``None`` (the
        default) is the explicit "unknown" opt-in that excludes the segment
        from drift tracking.  Non-finite values raise at the ingest boundary.

        Returns the detections produced by any micro-batch this submission
        completed (usually for *earlier* segments — the latency/throughput
        trade of micro-batching; :meth:`drain` flushes the rest).
        """
        self._require_serving()
        return self.service.submit(
            stream_id, action_feature, interaction_feature, interaction_level
        )

    def ingest_many(self, submissions) -> List[StreamDetection]:
        """Feed one tick of segments from many streams, then score once.

        ``submissions`` is an iterable of ``(stream_id, action_feature,
        interaction_feature[, interaction_level])`` tuples.  Under a parallel
        executor this is the high-throughput ingest path: batches that fill
        on different shards in the same tick are scored concurrently.
        """
        self._require_serving()
        return self.service.submit_many(submissions)

    def poll(self) -> List[StreamDetection]:
        """Flush micro-batches whose wall-clock deadline has passed."""
        self._require_serving()
        return self.service.poll()

    def drain(self) -> List[StreamDetection]:
        """Score everything queued and wait for in-flight maintenance work.

        Deadline-expired batches flush first (with the boundaries a running
        service would have given them), then every remaining under-filled
        batch; background retrains the final batches trigger are awaited, so
        after ``drain()`` the runtime is fully idle.
        """
        self._require_serving()
        return self.service.drain()

    def replay(
        self,
        streams: Mapping[str, StreamFeatures],
        *,
        interarrival_seconds: float = 0.0,
        flush: bool = True,
    ) -> List[StreamDetection]:
        """Replay whole feature streams through the runtime (round-robin).

        Convenience over :func:`repro.serving.replay_streams`; when the
        runtime was built with a :class:`ManualClock`, simulated time advances
        by ``interarrival_seconds`` per round and deadline flushes run.
        """
        self._require_serving()
        clock = self._clock if isinstance(self._clock, ManualClock) else None
        return replay_streams(
            self.service,
            streams,
            flush=flush,
            clock=clock,
            interarrival_seconds=interarrival_seconds,
        )

    def detections(self, stream_id: str) -> List[StreamDetection]:
        """All detections routed to ``stream_id`` since fit/restore."""
        self._require_serving()
        return self.service.detections(stream_id)

    def serve(self, *, start: bool = True):
        """Put this runtime behind the HTTP ingest tier.

        Builds a :class:`~repro.server.RuntimeServer` from
        ``config.server`` (single-tenant: wire stream ids pass through
        verbatim) and — unless ``start=False`` — binds the socket and starts
        serving.  The runtime owns the server: :meth:`close` shuts it down
        first, so admitted-but-unscored segments are flushed into the
        runtime before the final drain.  For multi-tenant deployments build
        the server around a :class:`~repro.server.TenantRouter` directly.
        """
        self._require_serving()
        if self._server is not None:
            raise RuntimeError("runtime is already serving; close() it first")
        from .server import RuntimeServer  # deferred: repro.server imports us

        server = RuntimeServer(self, config=self.config.server)
        self._server = server
        if start:
            server.start()
        return server

    def close(self) -> List[StreamDetection]:
        """Drain outstanding work, stop threads, stop accepting traffic.

        Returns the final drain's detections.  Shuts the HTTP server down
        first (when :meth:`serve` started one) so every admitted segment
        reaches the runtime, then drains, then stops the executor pool and
        any maintenance threads.  Idempotent; a closed runtime can still be
        inspected and checkpointed, but not fed.
        """
        if self._closed:
            return []
        if self._server is not None:
            self._server.close()
            self._server = None
        final: List[StreamDetection] = []
        if self.fitted:
            final = self.service.drain()
            self.service.close()
        self._closed = True
        return final

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def model(self) -> Optional[CLSTM]:
        """The currently *published* snapshot's model (None before fit).

        Tracks the registry: after an in-service incremental update this is
        the merged model actually serving traffic, not the initial fit.
        """
        if self.registry is None or len(self.registry) == 0:
            return None
        return self.registry.latest().model

    @property
    def detector(self) -> AnomalyDetector:
        """The currently published snapshot's detector."""
        self._require_fitted()
        return self.registry.latest().detector

    @property
    def anomaly_threshold(self) -> float:
        """The currently served anomaly threshold ``T_a``."""
        self._require_fitted()
        return self.registry.latest().threshold

    @property
    def model_version(self) -> int:
        """Version number of the currently published snapshot."""
        self._require_fitted()
        return self.registry.latest().version

    @property
    def stats(self) -> ServiceStats:
        """Aggregate serving counters across all shards."""
        self._require_serving_built()
        return self.service.stats

    def load_stats(self) -> List[ShardStats]:
        """One consistent per-shard load sample (queue depth, occupancy...)."""
        self._require_serving_built()
        return self.service.load_stats()

    def executor_stats(self) -> Dict[str, Any]:
        """JSON-safe executor introspection (shared segments, workers...)."""
        self._require_serving_built()
        return self.service.executor_stats()

    def rebalance_stats(self) -> Dict[str, Any]:
        """JSON-safe rebalancing summary (decision log, retired shards)."""
        self._require_serving_built()
        return self.service.rebalance_stats()

    @property
    def update_triggers(self) -> List[UpdateTrigger]:
        """Every drift trigger emitted since fit/restore."""
        self._require_serving_built()
        return self.service.update_triggers

    @property
    def update_reports(self) -> List[UpdateReport]:
        """Every completed in-service incremental update since fit/restore."""
        self._require_serving_built()
        return self.service.update_reports

    # ------------------------------------------------------------------ #
    # Durable checkpoint / restore
    # ------------------------------------------------------------------ #
    def checkpoint(self, path: Union[str, Path]) -> Path:
        """Persist the full runtime into the directory ``path``.

        Layout: ``runtime.json`` (config, registry manifest, version
        pointer), one ``version_<n>.npz`` per retained registry snapshot
        (weights via :func:`repro.nn.serialization.save_module`) and
        ``state.npz`` (session windows, drift monitor, queued requests).
        Only *retained* snapshots are persisted — with ``max_versions`` set,
        evicted versions are gone by design, and a checkpoint taken
        mid-update (e.g. from an ``on_update_trigger`` callback) never
        references one.  Detections, triggers and serving counters are
        reporting, not behaviour, and are not persisted.

        The write is crash-safe: everything lands in a staging directory
        that is swapped over ``path`` only once complete, so re-checkpointing
        to the same location (the periodic-checkpoint pattern) can never
        leave a readable-but-inconsistent mix of old and new files — a crash
        leaves either the previous checkpoint or, in the narrow window
        between the two renames, no checkpoint (which fails loudly).

        In-flight maintenance work is *paused*, not drained: the service
        pauses its background update planes (waiting only for the retrain
        already running, if any), exports state — including the queue of
        not-yet-started retrains — and resumes.  A restored runtime
        re-enqueues that queue, so queued maintenance work survives the
        process instead of being force-executed at checkpoint time or
        silently dropped at shutdown.
        """
        self._require_fitted()
        self._require_serving_built()
        self.service.pause_maintenance()
        try:
            return self._checkpoint_paused(Path(path))
        finally:
            self.service.resume_maintenance()

    def _checkpoint_paused(self, target: Path) -> Path:
        directory = target.parent / f".{target.name}.staging"
        if directory.exists():
            shutil.rmtree(directory)
        directory.mkdir(parents=True)

        versions: List[Dict[str, Any]] = []
        # One consistent registry cut: both the weight files and the
        # manifest's version pointer derive from this single locked
        # enumeration.  Reading highest_published separately would race a
        # concurrent publish (parallel shard, background plane) landing
        # between the two reads and produce a manifest whose pointer exceeds
        # the saved weights — a checkpoint from_checkpoint() must reject.
        retained = self.registry.retained()
        for snapshot in retained:
            filename = f"version_{snapshot.version:06d}.npz"
            save_module(
                snapshot.model,
                directory / filename,
                metadata={
                    "version": snapshot.version,
                    "threshold": snapshot.threshold,
                    "reason": snapshot.reason,
                    "metadata": dict(snapshot.metadata),
                },
            )
            versions.append(
                {
                    "version": snapshot.version,
                    "threshold": snapshot.threshold,
                    "reason": snapshot.reason,
                    "metadata": dict(snapshot.metadata),
                    "file": filename,
                }
            )

        arrays: Dict[str, np.ndarray] = {}
        state = self.service.export_state()
        structure = _pack(state, arrays)
        save_state(directory / _STATE_FILE, arrays, metadata={"state": structure})

        manifest = {
            "format": CHECKPOINT_FORMAT,
            "config": self.config.to_dict(),
            # Eviction always keeps the just-published latest, so the highest
            # retained version IS the version pointer of this registry cut.
            "published": versions[-1]["version"],
            "versions": versions,
            "pending_updates": sum(len(jobs) for jobs in state["plane_pending"]),
            # Live shard count (may exceed config.serving.num_shards after
            # rebalancer splits); from_checkpoint rebuilds this topology.
            "num_shards": len(self.service.shards),
        }
        (directory / _MANIFEST_FILE).write_text(
            json.dumps(manifest, indent=2), encoding="utf-8"
        )
        # Atomic swap: the complete staging directory replaces the target.
        if target.exists():
            discarded = target.parent / f".{target.name}.discarded"
            if discarded.exists():
                shutil.rmtree(discarded)
            os.replace(target, discarded)
            os.replace(directory, target)
            shutil.rmtree(discarded)
        else:
            os.replace(directory, target)
        return target

    @classmethod
    def from_checkpoint(
        cls, path: Union[str, Path], *, clock: Optional[Callable[[], float]] = None
    ) -> "Runtime":
        """Rebuild a fitted runtime from a :meth:`checkpoint` directory.

        The restored runtime serves the same model versions with the same
        thresholds, continues every stream's rolling window where it left
        off, and resumes the drift monitor (history set, buffers, update
        counter) — so replaying the same tail of traffic produces
        **bitwise-identical** detections and version swaps.
        """
        directory = Path(path)
        manifest_path = directory / _MANIFEST_FILE
        if not manifest_path.exists():
            raise FileNotFoundError(f"no runtime checkpoint at {directory}")
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        if manifest.get("format") not in _READABLE_FORMATS:
            raise ValueError(
                f"unsupported checkpoint format {manifest.get('format')!r}; "
                f"this build reads formats {list(_READABLE_FORMATS)}"
            )
        config = RuntimeConfig.from_dict(manifest["config"])
        runtime = cls(config, clock=clock)

        registry = ModelRegistry(config.detection, max_versions=config.max_versions)
        entries = sorted(manifest["versions"], key=lambda entry: entry["version"])
        if not entries:
            raise ValueError(f"checkpoint at {directory} holds no model versions")
        for entry in entries:
            model = CLSTM.from_config(config.model, coupling=config.coupling, seed=config.seed)
            state, _ = load_state(directory / entry["file"])
            model.load_state_dict(state)
            registry.restore(
                entry["version"],
                model,
                entry["threshold"],
                reason=entry["reason"],
                metadata=entry.get("metadata") or {},
            )
        if registry.highest_published != manifest["published"]:
            raise ValueError(
                f"inconsistent checkpoint: manifest version pointer is "
                f"{manifest['published']}, restored weights end at "
                f"{registry.highest_published}"
            )
        runtime.registry = registry
        runtime._build_service(
            historical_hidden=None, num_shards=manifest.get("num_shards")
        )

        arrays, metadata = load_state(directory / _STATE_FILE)
        runtime.service.restore_state(_unpack(metadata["state"], arrays))
        return runtime

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("runtime is closed")

    def _require_fitted(self) -> None:
        if self.registry is None:
            raise RuntimeError("runtime is not fitted; call fit() or from_checkpoint()")

    def _require_serving_built(self) -> None:
        if self.service is None:
            raise RuntimeError("runtime is not fitted; call fit() or from_checkpoint()")

    def _require_serving(self) -> None:
        self._require_open()
        self._require_serving_built()


# ---------------------------------------------------------------------- #
# Checkpoint codec: JSON structure + ndarray leaves
# ---------------------------------------------------------------------- #
_ARRAY_KEY = "__ndarray__"


def _pack(value: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Split a nested state structure into JSON plus an array table.

    Arrays are replaced by ``{"__ndarray__": key}`` markers and collected
    into ``arrays`` (persisted losslessly via ``.npz``); everything else must
    be JSON-representable.  :func:`_unpack` is the exact inverse.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.ndarray):
        key = f"a{len(arrays)}"
        arrays[key] = value
        return {_ARRAY_KEY: key}
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, Mapping):
        if _ARRAY_KEY in value:
            raise ValueError(f"'{_ARRAY_KEY}' is a reserved key in checkpoint state")
        return {str(key): _pack(item, arrays) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_pack(item, arrays) for item in value]
    raise TypeError(f"cannot checkpoint value of type {type(value).__name__}")


def _unpack(value: Any, arrays: Mapping[str, np.ndarray]) -> Any:
    """Inverse of :func:`_pack`."""
    if isinstance(value, dict):
        if set(value) == {_ARRAY_KEY}:
            return arrays[value[_ARRAY_KEY]]
        return {key: _unpack(item, arrays) for key, item in value.items()}
    if isinstance(value, list):
        return [_unpack(item, arrays) for item in value]
    return value
