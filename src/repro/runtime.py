"""Unified runtime facade: declarative config, one-call lifecycle, durable
checkpoint/restore.

The paper's system is one closed loop — ingest → CLSTM/REIA scoring →
drift-triggered incremental update → hot swap — but the library exposes it as
many loose classes that every deployment must wire by hand.  This module is
the assembled product:

* :class:`RuntimeConfig` composes the five configuration dataclasses
  (:class:`~repro.utils.config.ModelConfig`,
  :class:`~repro.utils.config.TrainingConfig`,
  :class:`~repro.utils.config.DetectionConfig`,
  :class:`~repro.utils.config.ServingConfig`,
  :class:`~repro.utils.config.UpdateConfig`) plus the runtime-level knobs,
  and round-trips through JSON — a deployment is one reviewable file.
* :class:`Runtime` owns the whole pipeline behind a small lifecycle surface:
  ``fit`` trains the CLSTM and calibrates the detector, publishing version 1
  into a :class:`~repro.serving.registry.ModelRegistry`; ``ingest``/``poll``/
  ``drain`` drive the (optionally sharded) micro-batching scoring service,
  whose attached update planes keep the model fresh; ``checkpoint`` persists
  the full runtime — every retained model version's weights via
  :mod:`repro.nn.serialization`, detector calibration, the version pointer,
  per-stream session windows, the drift monitor and queued requests — so
  :meth:`Runtime.from_checkpoint` resumes with **bitwise-identical**
  detections on a replayed stream (the crash-recovery contract).

Every class the facade builds on stays importable — ``repro.serving`` and
friends are the escape hatch for deployments the facade does not model
(e.g. one registry per shard; see ``examples/multi_stream_serving.py``).
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import warnings
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .core.clstm import CLSTM
from .core.detector import AnomalyDetector
from .core.training import CLSTMTrainer, TrainingHistory
from .durability.checkpoints import CheckpointStore, DeltaSourceError, StoredCheckpoint
from .durability.policy import CheckpointPolicy
from .durability.wal import WalPosition, WriteAheadLog, list_segments, read_tail
from .features.pipeline import StreamFeatures
from .nn.serialization import load_state, save_module, save_state
from .serving.executor import build_executor
from .serving.maintenance import UpdateReport
from .serving.registry import ModelRegistry
from .serving.service import (
    ManualClock,
    ServiceStats,
    ShardStats,
    StreamDetection,
    UpdateTrigger,
    replay_streams,
    validate_interaction_level,
)
from .serving.rebalance import Rebalancer
from .serving.sharding import ShardedScoringService
from .utils.config import (
    _NESTED_CONFIGS,
    ConfigBase,
    DetectionConfig,
    DurabilityConfig,
    ExecutorConfig,
    ModelConfig,
    ServerConfig,
    ServingConfig,
    ShardingConfig,
    TrainingConfig,
    UpdateConfig,
)

__all__ = ["RuntimeConfig", "Runtime", "CHECKPOINT_FORMAT"]

CHECKPOINT_FORMAT = 3
"""Version tag written into every checkpoint manifest.

Format 3 added the durability plane's fields: ``kind`` (``"full"`` |
``"delta"``), ``checkpoint_id``/``parent``/``delta_depth`` (the delta chain)
and ``wal`` (the write-ahead-log position to replay from) — plus per-version
``source`` entries pointing at the sibling checkpoint that physically holds
a delta's reused weight files.  Format 2 added ``plane_pending``
(queued-but-not-started background retrains, persisted instead of
force-executed at checkpoint time) and the manifest's ``pending_updates``
count; formats 1 and 2 — full checkpoints with no chain and no WAL — are
still readable."""

_READABLE_FORMATS = (1, 2, 3)

_MANIFEST_FILE = "runtime.json"
_STATE_FILE = "state.npz"


def _fsync_path(path: Path) -> None:
    """fsync one file or directory (directories hold the entry names)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclass(frozen=True)
class RuntimeConfig(ConfigBase):
    """Declarative description of one complete AOVLIS deployment.

    Composes the five component configurations and adds the knobs that only
    exist at the assembled-system level.  ``to_json``/``from_json`` (from
    :class:`~repro.utils.config.ConfigBase`) make a deployment one reviewable
    JSON document; nested sections round-trip recursively and typos fail with
    the offending ``Class.field`` named.
    """

    model: ModelConfig = ModelConfig()
    """CLSTM dimensions.  ``action_dim``/``interaction_dim`` must match the
    features the runtime is fitted on (validated in :meth:`Runtime.fit`)."""

    training: TrainingConfig = TrainingConfig()
    detection: DetectionConfig = DetectionConfig()
    serving: ServingConfig = ServingConfig()
    update: UpdateConfig = UpdateConfig()

    executor: ExecutorConfig = ExecutorConfig()
    """Execution strategy: serial in-line scoring (default), or a
    worker-thread pool for shard batches (``mode="parallel"``) with optional
    off-thread retrains (``background_updates=True``).  ``mode="auto"``
    resolves through the ``REPRO_EXECUTOR`` environment variable."""

    server: ServerConfig = ServerConfig()
    """HTTP ingest tier parameters consumed by :meth:`Runtime.serve`
    (bind address, admission-control queue bound, batch/long-poll knobs)."""

    durability: DurabilityConfig = DurabilityConfig()
    """Durability plane (:mod:`repro.durability`): set ``directory`` and the
    runtime write-ahead logs every ingest call, auto-checkpoints under the
    configured policy (delta checkpoints with periodic compaction), and
    :meth:`Runtime.recover` resumes the exact pre-crash state.  The default
    (no directory) keeps the historical manual-checkpoint behaviour."""

    sharding: ShardingConfig = ShardingConfig()
    """Load-rebalancing policy over the shard set.  ``rebalance=True``
    attaches a :class:`~repro.serving.rebalance.Rebalancer` that diverts
    *new* streams away from hot shards and splits/merges shards under the
    configured queue-depth thresholds; the default keeps pure pinned
    CRC-32 routing, bit-for-bit the pre-rebalancer behaviour."""

    sequence_length: int = 9
    """History length q of the CLSTM input sequences."""

    coupling: str = "both"
    """CLSTM coupling mode: ``"both"``, ``"influencer_to_audience"`` or ``"none"``."""

    seed: int = 0
    """Model-initialisation seed."""

    max_versions: int | None = None
    """Keep-last-K bound on retained registry snapshots (``None`` = all)."""

    enable_updates: bool = True
    """Attach the drift monitor and update plane (the closed learning loop).
    ``False`` serves a frozen model: no buffering, no triggers, no swaps."""

    max_history: int | None = None
    """Per-shard cap on the drift monitor's historical hidden-state set."""

    def __post_init__(self) -> None:
        if self.sequence_length < 1:
            raise ValueError(
                f"RuntimeConfig.sequence_length must be positive, got {self.sequence_length}"
            )
        if self.coupling not in ("both", "influencer_to_audience", "none"):
            raise ValueError(
                f"RuntimeConfig.coupling must be 'both', 'influencer_to_audience' "
                f"or 'none', got {self.coupling!r}"
            )
        if self.max_versions is not None and self.max_versions < 1:
            raise ValueError(
                f"RuntimeConfig.max_versions must be positive when set, got {self.max_versions}"
            )
        if self.max_history is not None and self.max_history < 1:
            raise ValueError(
                f"RuntimeConfig.max_history must be positive when set, got {self.max_history}"
            )
        if self.detection.top_k is not None:
            raise ValueError(
                "RuntimeConfig.detection.top_k must be unset: top-k ranking is "
                "batch-relative and incompatible with the serving runtime"
            )


_NESTED_CONFIGS["RuntimeConfig"] = RuntimeConfig


class Runtime:
    """One-call lifecycle over the assembled online-learning system.

    ::

        cfg = RuntimeConfig.from_json("deployment.json")
        rt = Runtime.from_config(cfg).fit(train_features)
        rt.ingest("stream-1", action, interaction, level)   # -> detections
        rt.poll()                                           # deadline flushes
        rt.drain()                                          # drain all queues
        rt.checkpoint("ckpt/")                              # durable state
        rt2 = Runtime.from_checkpoint("ckpt/")              # bitwise resume

    Parameters
    ----------
    config:
        The deployment description.
    clock:
        Monotonic time source for the wall-clock flush deadlines; tests and
        replay drivers inject a :class:`~repro.serving.service.ManualClock`.
    """

    def __init__(self, config: RuntimeConfig, *, clock: Optional[Callable[[], float]] = None) -> None:
        self.config = config
        self._clock = clock
        self.registry: Optional[ModelRegistry] = None
        self.service: Optional[ShardedScoringService] = None
        self.history: Optional[TrainingHistory] = None
        self._server = None  # RuntimeServer started via serve()
        self._closed = False
        # Durability plane (attached by fit()/from_checkpoint() when
        # config.durability.directory is set; None otherwise).  The lock
        # serialises ingest against checkpointing: the WAL is the ingest
        # order, so append+score must be atomic with respect to the
        # rotation+export cut a checkpoint takes.
        self._durability_lock = threading.RLock()
        self._store: Optional[CheckpointStore] = None
        self._wal: Optional[WriteAheadLog] = None
        self._policy: Optional[CheckpointPolicy] = None
        self._replayed_records = 0
        self._replayed_torn = 0
        self._last_seen_published = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_config(
        cls, config: RuntimeConfig, *, clock: Optional[Callable[[], float]] = None
    ) -> "Runtime":
        """An unfitted runtime for ``config``; call :meth:`fit` next."""
        return cls(config, clock=clock)

    @property
    def fitted(self) -> bool:
        return self.service is not None

    # ------------------------------------------------------------------ #
    # Lifecycle: fit
    # ------------------------------------------------------------------ #
    def fit(self, features: StreamFeatures) -> "Runtime":
        """Train, calibrate and stand the serving runtime up (version 1).

        Trains the CLSTM on the normal segments of ``features``, calibrates
        the anomaly threshold ``T_a``, publishes version 1 into the model
        registry, seeds the drift monitor's historical hidden-state set with
        the training hidden states, and builds the sharded scoring service
        (with attached update planes when ``enable_updates``).
        """
        self._require_open()
        if self.fitted:
            raise RuntimeError("runtime is already fitted; build a new Runtime to refit")
        config = self.config
        if features.action_dim != config.model.action_dim:
            raise ValueError(
                f"features have action_dim={features.action_dim} but "
                f"RuntimeConfig.model.action_dim={config.model.action_dim}"
            )
        if features.interaction_dim != config.model.interaction_dim:
            raise ValueError(
                f"features have interaction_dim={features.interaction_dim} but "
                f"RuntimeConfig.model.interaction_dim={config.model.interaction_dim}"
            )
        model = CLSTM.from_config(config.model, coupling=config.coupling, seed=config.seed)
        batch = features.sequences(config.sequence_length)
        labels = features.sequence_labels(config.sequence_length)
        normal = batch.subset(labels == 0)
        anomalous = batch.subset(labels == 1)
        if len(normal) == 0:
            raise ValueError("training stream contains no normal sequences")
        trainer = CLSTMTrainer(model, config.training)
        self.history = trainer.fit(
            normal, anomalous_sequences=anomalous if len(anomalous) else None
        )
        detector = AnomalyDetector(model, config.detection)
        threshold = detector.calibrate(normal)

        self.registry = ModelRegistry(config.detection, max_versions=config.max_versions)
        # The runtime owns the trained model, so the registry adopts it
        # directly (copy=False) instead of paying one more parameter copy.
        self.registry.publish(model, threshold, reason="initial", copy=False)
        historical = model.hidden_states(batch.action_sequences, batch.interaction_sequences)
        self._build_service(historical_hidden=historical)
        self._attach_durability()
        return self

    def _build_service(
        self,
        historical_hidden: Optional[np.ndarray],
        num_shards: Optional[int] = None,
    ) -> None:
        config = self.config
        serving = config.serving
        if num_shards is not None and num_shards != serving.num_shards:
            # Restoring a checkpoint taken after rebalancer splits: the live
            # topology (not the configured base count) is what the routes
            # and per-shard states were written against.
            serving = replace(serving, num_shards=int(num_shards))
        rebalancer = (
            Rebalancer(config.sharding, clock=self._clock)
            if config.sharding.rebalance
            else None
        )
        self.service = ShardedScoringService(
            self.registry,
            config=serving,
            sequence_length=config.sequence_length,
            update_config=config.update if config.enable_updates else None,
            attach_update_planes=config.enable_updates,
            training_config=config.training,
            historical_hidden=historical_hidden,
            max_history=config.max_history,
            clock=self._clock,
            executor=build_executor(config.executor),
            background_updates=config.executor.background_updates and config.enable_updates,
            rebalancer=rebalancer,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle: serve
    # ------------------------------------------------------------------ #
    def ingest(
        self,
        stream_id: str,
        action_feature: np.ndarray,
        interaction_feature: np.ndarray,
        interaction_level: Optional[float] = None,
    ) -> List[StreamDetection]:
        """Feed one incoming segment of one stream into the runtime.

        ``interaction_level`` must be finite when given; ``None`` (the
        default) is the explicit "unknown" opt-in that excludes the segment
        from drift tracking.  Non-finite values raise at the ingest boundary.

        Returns the detections produced by any micro-batch this submission
        completed (usually for *earlier* segments — the latency/throughput
        trade of micro-batching; :meth:`drain` flushes the rest).

        With durability attached the submission is validated and appended to
        the write-ahead log *before* it is scored (write-ahead ordering:
        anything that changed the runtime's state is on disk), and durable
        ingest is serialised — the log is the ingest order.
        """
        self._require_serving()
        if self._store is None:
            return self.service.submit(
                stream_id, action_feature, interaction_feature, interaction_level
            )
        (cleaned,) = self._validate_submissions(
            [(stream_id, action_feature, interaction_feature, interaction_level)]
        )
        with self._durability_lock:
            if self._wal is not None:
                self._wal.append([cleaned], batch=False)
            # Invariant: past _validate_submissions, submit() must not raise —
            # the WAL record above is already durable, and a logged-but-never-
            # scored submission would replay into state the original run never
            # had.  Anything that can reject a submission belongs in
            # _validate_submissions, before the append.
            detections = self.service.submit(*cleaned)
            if self._policy is not None:
                self._policy.note_records(1)
        self._maybe_auto_checkpoint()
        return detections

    def ingest_many(self, submissions) -> List[StreamDetection]:
        """Feed one tick of segments from many streams, then score once.

        ``submissions`` is an iterable of ``(stream_id, action_feature,
        interaction_feature[, interaction_level])`` tuples.  Under a parallel
        executor this is the high-throughput ingest path: batches that fill
        on different shards in the same tick are scored concurrently.  With
        durability attached the whole tick is one WAL record (replay must
        re-drive the micro-batcher with the same call shape).
        """
        self._require_serving()
        if self._store is None:
            return self.service.submit_many(submissions)
        cleaned = self._validate_submissions(submissions)
        with self._durability_lock:
            if self._wal is not None and cleaned:
                self._wal.append(cleaned, batch=True)
            # Same invariant as ingest(): the tick is durable, so submit_many
            # must not raise past validation (see _validate_submissions).
            detections = self.service.submit_many(cleaned)
            if self._policy is not None:
                self._policy.note_records(len(cleaned))
        self._maybe_auto_checkpoint()
        return detections

    def poll(self) -> List[StreamDetection]:
        """Flush micro-batches whose wall-clock deadline has passed.

        Also the heartbeat of the time-based auto-checkpoint rule: a policy
        with ``checkpoint_every_seconds`` fires at the next ingest or poll
        after the interval elapses.
        """
        self._require_serving()
        if self._store is None:
            return self.service.poll()
        with self._durability_lock:
            detections = self.service.poll()
        self._maybe_auto_checkpoint()
        return detections

    def drain(self) -> List[StreamDetection]:
        """Score everything queued and wait for in-flight maintenance work.

        Deadline-expired batches flush first (with the boundaries a running
        service would have given them), then every remaining under-filled
        batch; background retrains the final batches trigger are awaited, so
        after ``drain()`` the runtime is fully idle.
        """
        self._require_serving()
        if self._store is None:
            return self.service.drain()
        with self._durability_lock:
            return self.service.drain()

    def replay(
        self,
        streams: Mapping[str, StreamFeatures],
        *,
        interarrival_seconds: float = 0.0,
        flush: bool = True,
    ) -> List[StreamDetection]:
        """Replay whole feature streams through the runtime (round-robin).

        Convenience over :func:`repro.serving.replay_streams`; when the
        runtime was built with a :class:`ManualClock`, simulated time advances
        by ``interarrival_seconds`` per round and deadline flushes run.
        """
        self._require_serving()
        clock = self._clock if isinstance(self._clock, ManualClock) else None
        return replay_streams(
            self.service,
            streams,
            flush=flush,
            clock=clock,
            interarrival_seconds=interarrival_seconds,
        )

    def detections(self, stream_id: str) -> List[StreamDetection]:
        """All detections routed to ``stream_id`` since fit/restore."""
        self._require_serving()
        return self.service.detections(stream_id)

    def serve(self, *, start: bool = True):
        """Put this runtime behind the HTTP ingest tier.

        Builds a :class:`~repro.server.RuntimeServer` from
        ``config.server`` (single-tenant: wire stream ids pass through
        verbatim) and — unless ``start=False`` — binds the socket and starts
        serving.  The runtime owns the server: :meth:`close` shuts it down
        first, so admitted-but-unscored segments are flushed into the
        runtime before the final drain.  For multi-tenant deployments build
        the server around a :class:`~repro.server.TenantRouter` directly.
        """
        self._require_serving()
        if self._server is not None:
            raise RuntimeError("runtime is already serving; close() it first")
        from .server import RuntimeServer  # deferred: repro.server imports us

        server = RuntimeServer(self, config=self.config.server)
        self._server = server
        if start:
            server.start()
        return server

    def close(self) -> List[StreamDetection]:
        """Drain outstanding work, stop threads, stop accepting traffic.

        Returns the final drain's detections.  Shuts the HTTP server down
        first (when :meth:`serve` started one) so every admitted segment
        reaches the runtime, then drains, then stops the executor pool and
        any maintenance threads.  Idempotent; a closed runtime can still be
        inspected and checkpointed, but not fed.
        """
        if self._closed:
            return []
        if self._server is not None:
            self._server.close()
            self._server = None
        final: List[StreamDetection] = []
        if self.fitted:
            final = self.service.drain()
            self.service.close()
        if self._wal is not None:
            self._wal.close()
        self._closed = True
        return final

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def model(self) -> Optional[CLSTM]:
        """The currently *published* snapshot's model (None before fit).

        Tracks the registry: after an in-service incremental update this is
        the merged model actually serving traffic, not the initial fit.
        """
        if self.registry is None or len(self.registry) == 0:
            return None
        return self.registry.latest().model

    @property
    def detector(self) -> AnomalyDetector:
        """The currently published snapshot's detector."""
        self._require_fitted()
        return self.registry.latest().detector

    @property
    def anomaly_threshold(self) -> float:
        """The currently served anomaly threshold ``T_a``."""
        self._require_fitted()
        return self.registry.latest().threshold

    @property
    def model_version(self) -> int:
        """Version number of the currently published snapshot."""
        self._require_fitted()
        return self.registry.latest().version

    @property
    def stats(self) -> ServiceStats:
        """Aggregate serving counters across all shards."""
        self._require_serving_built()
        return self.service.stats

    def load_stats(self) -> List[ShardStats]:
        """One consistent per-shard load sample (queue depth, occupancy...)."""
        self._require_serving_built()
        return self.service.load_stats()

    def executor_stats(self) -> Dict[str, Any]:
        """JSON-safe executor introspection (shared segments, workers...)."""
        self._require_serving_built()
        return self.service.executor_stats()

    def rebalance_stats(self) -> Dict[str, Any]:
        """JSON-safe rebalancing summary (decision log, retired shards)."""
        self._require_serving_built()
        return self.service.rebalance_stats()

    @property
    def update_triggers(self) -> List[UpdateTrigger]:
        """Every drift trigger emitted since fit/restore."""
        self._require_serving_built()
        return self.service.update_triggers

    @property
    def update_reports(self) -> List[UpdateReport]:
        """Every completed in-service incremental update since fit/restore."""
        self._require_serving_built()
        return self.service.update_reports

    # ------------------------------------------------------------------ #
    # Durable checkpoint / restore
    # ------------------------------------------------------------------ #
    def checkpoint(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Persist the full runtime into the directory ``path``.

        Without a ``path`` (durability attached) the checkpoint goes into the
        durable store: a *delta* checkpoint chained on the store's latest —
        only model versions absent from the parent manifest are rewritten —
        compacted back to a full checkpoint every
        ``durability.full_every`` checkpoints, with dead directories and WAL
        segments pruned once the new checkpoint is durable.  With an explicit
        ``path`` the checkpoint is always full and self-contained (the
        historical behaviour); a durable runtime still rotates its WAL and
        records the position, so :meth:`from_checkpoint` replays the tail.

        Layout: ``runtime.json`` (config, registry manifest, version
        pointer), one ``version_<n>.npz`` per retained registry snapshot
        (weights via :func:`repro.nn.serialization.save_module`) and
        ``state.npz`` (session windows, drift monitor, queued requests).
        Only *retained* snapshots are persisted — with ``max_versions`` set,
        evicted versions are gone by design, and a checkpoint taken
        mid-update (e.g. from an ``on_update_trigger`` callback) never
        references one.  Detections, triggers and serving counters are
        reporting, not behaviour, and are not persisted.

        The write is crash-safe: everything lands in a staging directory
        that is swapped over ``path`` only once complete, so re-checkpointing
        to the same location (the periodic-checkpoint pattern) can never
        leave a readable-but-inconsistent mix of old and new files — a crash
        leaves either the previous checkpoint or, in the narrow window
        between the two renames, no checkpoint (which fails loudly).

        In-flight maintenance work is *paused*, not drained: the service
        pauses its background update planes (waiting only for the retrain
        already running, if any), exports state — including the queue of
        not-yet-started retrains — and resumes.  A restored runtime
        re-enqueues that queue, so queued maintenance work survives the
        process instead of being force-executed at checkpoint time or
        silently dropped at shutdown.

        Every written file and the directories the renames mutate are
        ``fsync``\\ ed, so the "previous checkpoint or loud failure" guarantee
        holds through power failure, not just process death.
        """
        self._require_fitted()
        self._require_serving_built()
        if path is None and self._store is None:
            raise RuntimeError(
                "checkpoint() without a path requires the durability plane "
                "(set RuntimeConfig.durability.directory) — or pass an explicit path"
            )
        with self._durability_lock:
            self.service.pause_maintenance()
            try:
                if path is None:
                    return self._checkpoint_store_paused()
                return self._checkpoint_paused(Path(path))
            finally:
                self.service.resume_maintenance()

    def _checkpoint_paused(self, target: Path) -> Path:
        """Full, self-contained checkpoint at an explicit path."""
        checkpoint_id = None
        wal_position = None
        if self._store is not None:
            # The cut must be a WAL rotation point even for out-of-store
            # checkpoints: the manifest records where its replay tail starts.
            checkpoint_id = self._store.allocate_id()
            if self._wal is not None:
                wal_position = self._wal.rotate(checkpoint_id)
        directory = target.parent / f".{target.name}.staging"
        if directory.exists():
            shutil.rmtree(directory)
        directory.mkdir(parents=True)
        try:
            self._write_checkpoint_files(
                directory,
                kind="full",
                checkpoint_id=checkpoint_id,
                parent=None,
                wal_position=wal_position,
            )
        except BaseException:
            shutil.rmtree(directory, ignore_errors=True)
            raise
        # Atomic swap: the complete staging directory replaces the target.
        if target.exists():
            discarded = target.parent / f".{target.name}.discarded"
            if discarded.exists():
                shutil.rmtree(discarded)
            os.replace(target, discarded)
            os.replace(directory, target)
            shutil.rmtree(discarded)
        else:
            os.replace(directory, target)
        # The renames live in the parent directory's entries; without this
        # fsync a power cut can roll the whole swap back.
        _fsync_path(target.parent)
        if self._policy is not None:
            self._policy.mark()
        return target

    def _checkpoint_store_paused(self) -> Path:
        """Policy/auto checkpoint into the durable store (delta-chained)."""
        store = self._store
        config = self.config.durability
        store.ensure_layout()
        checkpoint_id = store.allocate_id()
        wal_position = self._wal.rotate(checkpoint_id) if self._wal is not None else None
        parent = store.latest()
        kind = "full"
        if config.delta and parent is not None:
            if int(parent.manifest.get("delta_depth", 0)) + 1 < config.full_every:
                kind = "delta"
        target = store.directory_for(checkpoint_id)
        directory = store.checkpoints_dir / f".{target.name}.staging"
        if directory.exists():
            shutil.rmtree(directory)
        directory.mkdir(parents=True)
        try:
            try:
                self._write_checkpoint_files(
                    directory,
                    kind=kind,
                    checkpoint_id=checkpoint_id,
                    parent=parent if kind == "delta" else None,
                    wal_position=wal_position,
                )
            except DeltaSourceError as error:
                # The parent chain lost version files (eviction, tampering,
                # a half-copied store).  delta_plan raises before anything is
                # written, so compact to a self-contained full checkpoint
                # instead of rethrowing the same error out of every future
                # auto-checkpoint — loudly, because the chain damage itself
                # still deserves an operator's attention.
                warnings.warn(
                    f"compacting to a full checkpoint: {error}",
                    RuntimeWarning,
                    stacklevel=3,
                )
                kind = "full"
                self._write_checkpoint_files(
                    directory,
                    kind="full",
                    checkpoint_id=checkpoint_id,
                    parent=None,
                    wal_position=wal_position,
                )
        except BaseException:
            shutil.rmtree(directory, ignore_errors=True)
            raise
        os.replace(directory, target)  # fresh id: the target can never exist
        _fsync_path(store.checkpoints_dir)
        if kind == "full":
            store.written_full += 1
        else:
            store.written_delta += 1
        # Retention, only now that the new checkpoint is durable: directories
        # off the live chain first, then WAL segments before the rotation.
        store.prune()
        if self._wal is not None and wal_position is not None:
            self._wal.prune(wal_position)
        if self._policy is not None:
            self._policy.mark()
        return target

    def _write_checkpoint_files(
        self,
        directory: Path,
        *,
        kind: str,
        checkpoint_id: Optional[int],
        parent: Optional[StoredCheckpoint],
        wal_position: Optional[WalPosition],
    ) -> Dict[str, Any]:
        """Write weights/state/manifest (each fsynced) into ``directory``."""
        versions: List[Dict[str, Any]] = []
        # One consistent registry cut: both the weight files and the
        # manifest's version pointer derive from this single locked
        # enumeration.  Reading highest_published separately would race a
        # concurrent publish (parallel shard, background plane) landing
        # between the two reads and produce a manifest whose pointer exceeds
        # the saved weights — a checkpoint from_checkpoint() must reject.
        retained = self.registry.retained()
        reuse: Dict[int, Tuple[str, str]] = {}
        parent_name = None
        delta_depth = 0
        if kind == "delta":
            # Resolves every reusable version to the sibling directory that
            # physically holds its weights and verifies the files exist —
            # raising DeltaSourceError (with the version ids) *now*, at write
            # time, if eviction/compaction broke the chain.
            reuse = self._store.delta_plan(
                parent, [snapshot.version for snapshot in retained]
            )
            parent_name = parent.path.name
            delta_depth = int(parent.manifest.get("delta_depth", 0)) + 1
        for snapshot in retained:
            entry: Dict[str, Any] = {
                "version": snapshot.version,
                "threshold": snapshot.threshold,
                "reason": snapshot.reason,
                "metadata": dict(snapshot.metadata),
            }
            if snapshot.version in reuse:
                source, filename = reuse[snapshot.version]
                entry["file"] = filename
                entry["source"] = source
            else:
                filename = f"version_{snapshot.version:06d}.npz"
                save_module(
                    snapshot.model,
                    directory / filename,
                    metadata={
                        "version": snapshot.version,
                        "threshold": snapshot.threshold,
                        "reason": snapshot.reason,
                        "metadata": dict(snapshot.metadata),
                    },
                )
                _fsync_path(directory / filename)
                entry["file"] = filename
            versions.append(entry)

        arrays: Dict[str, np.ndarray] = {}
        state = self.service.export_state()
        structure = _pack(state, arrays)
        save_state(directory / _STATE_FILE, arrays, metadata={"state": structure})
        _fsync_path(directory / _STATE_FILE)

        manifest = {
            "format": CHECKPOINT_FORMAT,
            "config": self.config.to_dict(),
            # Eviction always keeps the just-published latest, so the highest
            # retained version IS the version pointer of this registry cut.
            "published": versions[-1]["version"],
            "versions": versions,
            "pending_updates": sum(len(jobs) for jobs in state["plane_pending"]),
            # Live shard count (may exceed config.serving.num_shards after
            # rebalancer splits); from_checkpoint rebuilds this topology.
            "num_shards": len(self.service.shards),
            "kind": kind,
            "checkpoint_id": checkpoint_id,
            "parent": parent_name,
            "delta_depth": delta_depth,
            "wal": (
                {
                    "checkpoint_id": wal_position.checkpoint_id,
                    "sequence": wal_position.sequence,
                }
                if wal_position is not None
                else None
            ),
        }
        manifest_path = directory / _MANIFEST_FILE
        manifest_path.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
        _fsync_path(manifest_path)
        # The directory's entry list (every name written above) must be
        # durable before the rename publishes it.
        _fsync_path(directory)
        return manifest

    @classmethod
    def from_checkpoint(
        cls,
        path: Union[str, Path],
        *,
        clock: Optional[Callable[[], float]] = None,
        replay_wal: bool = True,
    ) -> "Runtime":
        """Rebuild a fitted runtime from a :meth:`checkpoint` directory.

        The restored runtime serves the same model versions with the same
        thresholds, continues every stream's rolling window where it left
        off, and resumes the drift monitor (history set, buffers, update
        counter) — so replaying the same tail of traffic produces
        **bitwise-identical** detections and version swaps.

        Delta checkpoints resolve reused version files from the sibling
        directories their manifest names (one level of indirection; a broken
        chain raises :class:`FileNotFoundError` naming the missing file).
        When the checkpoint lives inside a durability store — or
        ``config.durability.directory`` points at one — the store is
        re-attached and, unless ``replay_wal=False``, the write-ahead-log
        tail recorded by the manifest is replayed through the scoring
        service, recovering every submission ingested after the checkpoint.
        :meth:`recover` is the "resume from the latest checkpoint" shorthand.
        """
        directory = Path(path)
        manifest_path = directory / _MANIFEST_FILE
        if not manifest_path.exists():
            raise FileNotFoundError(f"no runtime checkpoint at {directory}")
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        if manifest.get("format") not in _READABLE_FORMATS:
            raise ValueError(
                f"unsupported checkpoint format {manifest.get('format')!r}; "
                f"this build reads formats {list(_READABLE_FORMATS)}"
            )
        config = RuntimeConfig.from_dict(manifest["config"])
        runtime = cls(config, clock=clock)

        registry = ModelRegistry(config.detection, max_versions=config.max_versions)
        entries = sorted(manifest["versions"], key=lambda entry: entry["version"])
        if not entries:
            raise ValueError(f"checkpoint at {directory} holds no model versions")
        for entry in entries:
            source = entry.get("source")
            if source:
                # Delta: the weights live in a sibling checkpoint directory.
                weights_path = directory.parent / source / entry["file"]
            else:
                weights_path = directory / entry["file"]
            if not weights_path.is_file():
                raise FileNotFoundError(
                    f"checkpoint at {directory} references version "
                    f"{entry['version']} weights at {weights_path}, which do "
                    f"not exist (broken delta chain)"
                )
            model = CLSTM.from_config(config.model, coupling=config.coupling, seed=config.seed)
            state, _ = load_state(weights_path)
            model.load_state_dict(state)
            registry.restore(
                entry["version"],
                model,
                entry["threshold"],
                reason=entry["reason"],
                metadata=entry.get("metadata") or {},
            )
        if registry.highest_published != manifest["published"]:
            raise ValueError(
                f"inconsistent checkpoint: manifest version pointer is "
                f"{manifest['published']}, restored weights end at "
                f"{registry.highest_published}"
            )
        runtime.registry = registry
        runtime._build_service(
            historical_hidden=None, num_shards=manifest.get("num_shards")
        )

        arrays, metadata = load_state(directory / _STATE_FILE)
        runtime.service.restore_state(_unpack(metadata["state"], arrays))

        # Re-attach durability.  A checkpoint inside a store's layout
        # (<root>/checkpoints/ckpt-NNNNNN) names its own root — which makes
        # whole-store copies relocatable; otherwise fall back to the config.
        root: Optional[Path] = None
        if directory.parent.name == "checkpoints":
            root = directory.parent.parent
        elif config.durability.directory is not None:
            root = Path(config.durability.directory)
        runtime._attach_durability(root=root, manifest=manifest, replay_wal=replay_wal)
        return runtime

    @classmethod
    def recover(
        cls,
        directory: Union[str, Path],
        *,
        clock: Optional[Callable[[], float]] = None,
        replay_wal: bool = True,
    ) -> "Runtime":
        """Resume from the latest checkpoint of a durability directory.

        ``directory`` is the ``RuntimeConfig.durability.directory`` root the
        crashed process was running with.  Restores the newest valid
        checkpoint in its store and replays the write-ahead-log tail, landing
        on the exact state the crashed process had durably reached — a
        SIGKILL at any record boundary resumes bitwise-identical.
        """
        store = CheckpointStore(directory)
        latest = store.latest()
        if latest is None:
            raise FileNotFoundError(
                f"no recoverable checkpoint under {store.checkpoints_dir}"
            )
        return cls.from_checkpoint(latest.path, clock=clock, replay_wal=replay_wal)

    # ------------------------------------------------------------------ #
    # Durability plane internals
    # ------------------------------------------------------------------ #
    def _attach_durability(
        self,
        *,
        root: Optional[Path] = None,
        manifest: Optional[Dict[str, Any]] = None,
        replay_wal: bool = True,
    ) -> None:
        """Stand the WAL + store + policy up for a fitted runtime.

        ``manifest`` is the checkpoint this runtime was restored from (None
        on a fresh fit); its recorded WAL position is the replay point.
        """
        config = self.config.durability
        if root is None:
            root = Path(config.directory) if config.directory is not None else None
        if root is None:
            return
        store = CheckpointStore(root)
        if manifest is None and store.latest() is not None:
            raise RuntimeError(
                f"durability directory {root} already holds checkpoints; "
                f"Runtime.recover({str(root)!r}) resumes them — fitting fresh "
                f"over a live store would fork its history"
            )
        store.ensure_layout()
        self._store = store
        self._policy = CheckpointPolicy(
            every_records=config.checkpoint_every_records,
            every_updates=config.checkpoint_every_updates,
            every_seconds=config.checkpoint_every_seconds,
            clock=self._clock,
        )
        position: Optional[WalPosition] = None
        if manifest is not None and manifest.get("wal") is not None:
            wal_info = manifest["wal"]
            position = WalPosition(
                int(wal_info["checkpoint_id"]), int(wal_info["sequence"])
            )
        if position is not None and replay_wal:
            self._replay_wal_tail(position)
        if config.wal:
            wal = WriteAheadLog(store.wal_dir, fsync_every=config.wal_fsync_every)
            if position is not None:
                epoch = position.checkpoint_id
            elif manifest is not None:
                epoch = int(manifest.get("checkpoint_id") or 0)
            else:
                epoch = 0
            # A crash between a WAL rotation and its checkpoint's publish
            # orphans a segment of an epoch newer than any stored checkpoint,
            # holding pre-crash records.  New appends must sort *after* those
            # (replay order is sorted segment order), so open at the highest
            # epoch present on disk if it exceeds the restored one.
            on_disk = [p.checkpoint_id for p, _ in list_segments(store.wal_dir)]
            if on_disk:
                epoch = max(epoch, max(on_disk))
            # open() always starts a fresh segment (sequence one past the
            # highest on disk): recovery never appends to a possibly-torn
            # tail, and the new segment sorts after every replayed one.
            wal.open(epoch)
            self._wal = wal
        self._last_seen_published = (
            self.registry.highest_published if self.registry is not None else 0
        )

    def _replay_wal_tail(self, position: WalPosition) -> None:
        """Re-drive every logged ingest call at or after ``position``."""
        tail = read_tail(self._store.wal_dir, position)
        if tail.segments == 0:
            raise RuntimeError(
                f"checkpoint expects write-ahead-log segments at or after "
                f"{tuple(position)} but {self._store.wal_dir} holds none "
                f"(pruned or moved); pass replay_wal=False to accept the "
                f"checkpoint state without the logged tail"
            )
        for record in tail.records:
            # The record kind preserves the original call shape — an
            # ingest_many tick drives the micro-batcher differently from a
            # sequence of single submits, and bitwise replay needs the same.
            if record.kind == "batch":
                self.service.submit_many(record.submissions)
            else:
                for submission in record.submissions:
                    self.service.submit(*submission)
        self._replayed_records = tail.submissions
        self._replayed_torn = tail.torn_records

    def _validate_submissions(
        self, submissions: Iterable[Sequence]
    ) -> List[Tuple[str, np.ndarray, np.ndarray, Optional[float]]]:
        """Normalise and fully validate submissions *before* the WAL append.

        Anything that would make the scoring service raise must be rejected
        here: a submission that reached the log but not the service would
        replay into state the original run never had.  The arrays are
        coerced exactly as the scoring session coerces them (flat float64),
        so the bytes logged are the bytes scored.
        """
        model = self.config.model
        cleaned: List[Tuple[str, np.ndarray, np.ndarray, Optional[float]]] = []
        for submission in submissions:
            if len(submission) == 3:
                stream_id, action, interaction = submission
                level = None
            elif len(submission) == 4:
                stream_id, action, interaction, level = submission
            else:
                raise ValueError(
                    "submission must be (stream_id, action_feature, "
                    f"interaction_feature[, interaction_level]), got "
                    f"{len(submission)} elements"
                )
            if level is not None:
                validate_interaction_level(level)
                level = float(level)
            action = np.ascontiguousarray(
                np.asarray(action, dtype=np.float64).reshape(-1)
            )
            interaction = np.ascontiguousarray(
                np.asarray(interaction, dtype=np.float64).reshape(-1)
            )
            if action.shape[0] != model.action_dim:
                raise ValueError(
                    f"action_feature has {action.shape[0]} elements but "
                    f"ModelConfig.action_dim={model.action_dim}"
                )
            if interaction.shape[0] != model.interaction_dim:
                raise ValueError(
                    f"interaction_feature has {interaction.shape[0]} elements "
                    f"but ModelConfig.interaction_dim={model.interaction_dim}"
                )
            cleaned.append((str(stream_id), action, interaction, level))
        return cleaned

    def _maybe_auto_checkpoint(self) -> None:
        """Fire the checkpoint policy if any of its rules are due."""
        policy = self._policy
        if policy is None or not policy.enabled:
            return
        published = self.registry.highest_published
        if published > self._last_seen_published:
            policy.note_updates(published - self._last_seen_published)
            self._last_seen_published = published
        if not policy.due():
            return
        with self._durability_lock:
            # Re-check under the lock: a concurrent ingest may have just
            # checkpointed and reset the counters.
            if self._policy is not None and self._policy.due():
                self.checkpoint()

    def durability_stats(self) -> Dict[str, Any]:
        """JSON-safe durability counters for ``/stats`` and ``/metrics``."""
        if self._store is None:
            return {"enabled": False}
        return {
            "enabled": True,
            "wal": self._wal.stats() if self._wal is not None else None,
            "checkpoints": self._store.stats(),
            "policy": self._policy.stats() if self._policy is not None else None,
            "replayed_records": self._replayed_records,
            "replayed_torn_records": self._replayed_torn,
        }

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("runtime is closed")

    def _require_fitted(self) -> None:
        if self.registry is None:
            raise RuntimeError("runtime is not fitted; call fit() or from_checkpoint()")

    def _require_serving_built(self) -> None:
        if self.service is None:
            raise RuntimeError("runtime is not fitted; call fit() or from_checkpoint()")

    def _require_serving(self) -> None:
        self._require_open()
        self._require_serving_built()


# ---------------------------------------------------------------------- #
# Checkpoint codec: JSON structure + ndarray leaves
# ---------------------------------------------------------------------- #
_ARRAY_KEY = "__ndarray__"


def _pack(value: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Split a nested state structure into JSON plus an array table.

    Arrays are replaced by ``{"__ndarray__": key}`` markers and collected
    into ``arrays`` (persisted losslessly via ``.npz``); everything else must
    be JSON-representable.  :func:`_unpack` is the exact inverse.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.ndarray):
        key = f"a{len(arrays)}"
        arrays[key] = value
        return {_ARRAY_KEY: key}
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, Mapping):
        if _ARRAY_KEY in value:
            raise ValueError(f"'{_ARRAY_KEY}' is a reserved key in checkpoint state")
        return {str(key): _pack(item, arrays) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_pack(item, arrays) for item in value]
    raise TypeError(f"cannot checkpoint value of type {type(value).__name__}")


def _unpack(value: Any, arrays: Mapping[str, np.ndarray]) -> Any:
    """Inverse of :func:`_pack`."""
    if isinstance(value, dict):
        if set(value) == {_ARRAY_KEY}:
            return arrays[value[_ARRAY_KEY]]
        return {key: _unpack(item, arrays) for key, item in value.items()}
    if isinstance(value, list):
        return [_unpack(item, arrays) for item in value]
    return value
