"""Latent influencer behaviour process.

The simulator replaces the pixels of a real live stream with a latent
behaviour process:

* the influencer is always in one of a small set of *action states*
  (e.g. ``presenting``, ``demonstrating``, ``interacting``) that follow a
  Markov chain — this models the "item pattern" / presentation-style
  regularity described in Section IV-B of the paper;
* occasionally the influencer performs an *attractive action* (the balance
  board wobble of Fig. 1) — this is the anomalous state that, combined with a
  delayed audience burst, constitutes a ground-truth anomaly;
* when the dataset profile allows two-way interaction (INF, TWI), a strong
  audience response nudges the influencer to switch state, reproducing the
  mutual influence CLSTM is designed to capture.

Each state has a *motion signature*: a distribution over a set of latent
motion channels.  A segment's ``motion_content`` is the per-frame signature of
its dominant state corrupted by noise; the simulated I3D extractor maps this
to a 400-dimensional probability-like action feature whose distribution shifts
with the state — which is exactly the property the detection pipeline relies
on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["ActionState", "InfluencerBehaviourModel"]


@dataclass(frozen=True)
class ActionState:
    """One latent influencer behaviour state."""

    name: str
    signature: np.ndarray
    """Distribution over motion channels characterising the state."""

    attractiveness: float
    """How strongly the state attracts audience attention, in [0, 1]."""

    is_anomalous: bool = False
    """Whether the state corresponds to an injected anomalous action."""


class InfluencerBehaviourModel:
    """Markov model over influencer action states with anomaly injection.

    Parameters
    ----------
    motion_channels:
        Number of latent motion channels in each state signature.
    normal_states:
        Number of distinct normal behaviour states.
    anomaly_rate:
        Per-second probability of starting an anomalous (attractive) action.
    anomaly_duration:
        Mean duration of an anomalous action, in seconds.
    switch_probability:
        Per-second probability of a spontaneous switch between normal states.
    audience_reactivity:
        Probability that a strong audience burst causes the influencer to
        switch state (two-way coupling).  Zero for SPE/TED-style streams where
        the speaker ignores or cannot see the chat.
    signature_concentration:
        Dirichlet concentration of state signatures; smaller values yield more
        distinctive (peaked) signatures.
    anomaly_visual_shift:
        How far (in [0, 1]) an anomalous action's motion signature moves away
        from the normal signature it is derived from.  The paper stresses that
        in live social video the speakers' "limited actions and movement" make
        the spatial-temporal features alone "not discriminative enough" — the
        anomalous actions are therefore only *moderately* different visually,
        and the discriminating signal is the audience reaction.
    distractor_rate / distractor_duration:
        Per-second probability and mean length of *distractor* actions: brief
        flourishes that are visually about as unusual as an anomalous action
        but do not attract the audience.  They are labelled normal and exist
        to expose detectors that rely on visual novelty alone.
    rng:
        Random generator driving the behaviour *trajectory* (state switches,
        anomaly starts, frame noise).
    signature_rng:
        Random generator used only to draw the state *signatures*.  Streams
        that should depict the same influencers/presentation styles (e.g. the
        train and test splits of one dataset) must share this seed, while
        their trajectories stay independent.  Defaults to ``rng``.
    """

    def __init__(
        self,
        motion_channels: int = 16,
        normal_states: int = 4,
        anomaly_rate: float = 0.01,
        anomaly_duration: float = 8.0,
        switch_probability: float = 0.01,
        audience_reactivity: float = 0.3,
        signature_concentration: float = 0.5,
        anomaly_visual_shift: float = 0.35,
        distractor_rate: float = 0.02,
        distractor_duration: float = 4.0,
        rng: np.random.Generator | None = None,
        signature_rng: np.random.Generator | None = None,
    ) -> None:
        if motion_channels < 2:
            raise ValueError("motion_channels must be at least 2")
        if normal_states < 1:
            raise ValueError("normal_states must be at least 1")
        if not 0.0 <= anomaly_rate <= 1.0:
            raise ValueError("anomaly_rate must be a probability")
        if anomaly_duration <= 0:
            raise ValueError("anomaly_duration must be positive")
        if not 0.0 <= anomaly_visual_shift <= 1.0:
            raise ValueError("anomaly_visual_shift must be in [0, 1]")
        if not 0.0 <= distractor_rate <= 1.0:
            raise ValueError("distractor_rate must be a probability")
        self.motion_channels = motion_channels
        self.anomaly_rate = anomaly_rate
        self.anomaly_duration = anomaly_duration
        self.switch_probability = switch_probability
        self.audience_reactivity = audience_reactivity
        self.anomaly_visual_shift = anomaly_visual_shift
        self.distractor_rate = distractor_rate
        self.distractor_duration = distractor_duration
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._signature_rng = signature_rng if signature_rng is not None else self._rng

        self.normal_states: List[ActionState] = [
            ActionState(
                name=f"normal_{i}",
                signature=self._draw_signature(signature_concentration),
                attractiveness=float(self._signature_rng.uniform(0.05, 0.25)),
            )
            for i in range(normal_states)
        ]
        # Anomalous "attractive action" states are visually *similar* to a
        # normal state (blended signature) but far more attractive to the
        # audience; their distinctiveness lives mostly in the reaction.
        self.anomalous_states: List[ActionState] = [
            ActionState(
                name=f"attractive_{i}",
                signature=self._blend_signature(signature_concentration),
                attractiveness=float(self._signature_rng.uniform(0.7, 1.0)),
                is_anomalous=True,
            )
            for i in range(max(1, normal_states // 2))
        ]
        # Distractor states: visually unusual (though less so than anomalous
        # actions), without the audience appeal, and labelled normal.
        self.distractor_states: List[ActionState] = [
            ActionState(
                name=f"distractor_{i}",
                signature=self._blend_signature(signature_concentration, shift_scale=0.6),
                attractiveness=float(self._signature_rng.uniform(0.05, 0.2)),
            )
            for i in range(max(1, normal_states // 2))
        ]
        # The "responsive" state is the style the influencer falls into when the
        # chat heats up (e.g. reading comments, thanking viewers).  Because the
        # audience history makes this switch predictable, models that see the
        # audience stream (CLSTM) can anticipate it while visual-only or
        # one-way models cannot — the mutual-influence pathway of Fig. 3(b).
        self.responsive_state = self.normal_states[-1]
        self._current = self.normal_states[0]
        self._anomaly_seconds_left = 0.0
        self._distractor_seconds_left = 0.0

    # ------------------------------------------------------------------ #
    # State evolution
    # ------------------------------------------------------------------ #
    @property
    def current_state(self) -> ActionState:
        """The state the influencer is currently in."""
        return self._current

    def reset(self) -> None:
        """Return to the first normal state and clear any running action."""
        self._current = self.normal_states[0]
        self._anomaly_seconds_left = 0.0
        self._distractor_seconds_left = 0.0

    def step(self, audience_pressure: float = 0.0, anomaly_rate_scale: float = 1.0) -> ActionState:
        """Advance the behaviour process by one second.

        Parameters
        ----------
        audience_pressure:
            Normalised measure in [0, 1] of how strongly the audience reacted
            during the previous second.  With two-way coupling a high value
            makes a state switch more likely (the influencer adapts to the
            chat), mirroring Fig. 3(b) of the paper.
        anomaly_rate_scale:
            Multiplier on the per-second anomaly start probability for this
            step.  Scenario schedules use it to suppress (``0.0``, e.g. the
            label-free prefix of a cold start) or concentrate anomalous
            actions in parts of a stream; ``1.0`` is the profile behaviour.
        """
        if anomaly_rate_scale < 0:
            raise ValueError("anomaly_rate_scale must be non-negative")
        audience_pressure = float(np.clip(audience_pressure, 0.0, 1.0))
        if self._anomaly_seconds_left > 0:
            self._anomaly_seconds_left -= 1.0
            if self._anomaly_seconds_left <= 0:
                self._current = self._pick_normal_state()
            return self._current
        if self._distractor_seconds_left > 0:
            self._distractor_seconds_left -= 1.0
            if self._distractor_seconds_left <= 0:
                self._current = self._pick_normal_state()
            return self._current

        if self._rng.random() < min(1.0, self.anomaly_rate * anomaly_rate_scale):
            self._current = self.anomalous_states[self._rng.integers(len(self.anomalous_states))]
            self._anomaly_seconds_left = max(1.0, self._rng.exponential(self.anomaly_duration))
            return self._current

        if self.distractor_rate > 0 and self._rng.random() < self.distractor_rate:
            self._current = self.distractor_states[self._rng.integers(len(self.distractor_states))]
            self._distractor_seconds_left = max(1.0, self._rng.exponential(self.distractor_duration))
            return self._current

        # Two-way coupling: strong audience pressure (a burst, not background
        # chatter) pulls the influencer into the responsive style, a switch
        # that is predictable from the audience history alone.
        if self.audience_reactivity > 0 and audience_pressure > 0.6:
            if self._rng.random() < self.audience_reactivity:
                self._current = self.responsive_state
                return self._current

        switch_probability = self.switch_probability
        switch_probability += self.audience_reactivity * audience_pressure * 0.1
        if self._rng.random() < switch_probability:
            self._current = self._pick_normal_state()
        return self._current

    def force_anomaly(self, duration_seconds: float) -> ActionState:
        """Start an anomalous (attractive) action right now, deterministically.

        Scenario schedules use this to place a sustained burst at a known
        stream time (e.g. after a deliberately quiet prefix) instead of
        waiting for the Markov process to draw one.  The action runs for
        ``duration_seconds`` seconds unless a later :meth:`step` ends it.
        """
        if duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        self._current = self.anomalous_states[self._rng.integers(len(self.anomalous_states))]
        self._anomaly_seconds_left = float(duration_seconds)
        self._distractor_seconds_left = 0.0
        return self._current

    def shift_regime(self) -> None:
        """Redraw every state's motion signature (a regime switch).

        Models a persistent change of presentation style mid-stream — new
        camera setup, new game, new show format.  Fresh signatures are drawn
        from the signature generator, so the post-switch visual distribution
        is decorrelated from the one any detector trained on; attractiveness
        levels and state names are redrawn with them.  Segments already
        emitted keep the old signatures (states are immutable snapshots).
        """
        concentration = 0.5
        self.normal_states = [
            ActionState(
                name=f"regime_{i}",
                signature=self._draw_signature(concentration),
                attractiveness=float(self._signature_rng.uniform(0.05, 0.25)),
            )
            for i in range(len(self.normal_states))
        ]
        self.anomalous_states = [
            ActionState(
                name=f"regime_attractive_{i}",
                signature=self._blend_signature(concentration),
                attractiveness=float(self._signature_rng.uniform(0.7, 1.0)),
                is_anomalous=True,
            )
            for i in range(len(self.anomalous_states))
        ]
        self.distractor_states = [
            ActionState(
                name=f"regime_distractor_{i}",
                signature=self._blend_signature(concentration, shift_scale=0.6),
                attractiveness=float(self._signature_rng.uniform(0.05, 0.2)),
            )
            for i in range(len(self.distractor_states))
        ]
        self.responsive_state = self.normal_states[-1]
        self._current = self.normal_states[0]
        self._anomaly_seconds_left = 0.0
        self._distractor_seconds_left = 0.0

    def motion_frames(self, state: ActionState, frames: int, noise: float = 0.05) -> np.ndarray:
        """Per-frame motion content for ``frames`` frames of ``state``.

        Each frame is the state signature plus truncated Gaussian noise,
        renormalised so frames remain distributions over motion channels.
        """
        if frames <= 0:
            raise ValueError("frames must be positive")
        base = np.tile(state.signature, (frames, 1))
        noisy = base + self._rng.normal(0.0, noise, size=base.shape)
        noisy = np.clip(noisy, 1e-6, None)
        return noisy / noisy.sum(axis=1, keepdims=True)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _draw_signature(self, concentration: float) -> np.ndarray:
        alpha = np.full(self.motion_channels, max(concentration, 1e-3))
        return self._signature_rng.dirichlet(alpha)

    def _blend_signature(self, concentration: float, shift_scale: float = 1.0) -> np.ndarray:
        """Signature that is a moderate perturbation of a random normal state."""
        base = self.normal_states[self._signature_rng.integers(len(self.normal_states))].signature
        novel = self._draw_signature(concentration)
        shift = float(np.clip(self.anomaly_visual_shift * shift_scale, 0.0, 1.0))
        blended = (1.0 - shift) * base + shift * novel
        blended = np.clip(blended, 1e-9, None)
        return blended / blended.sum()

    def _pick_normal_state(self) -> ActionState:
        candidates = [s for s in self.normal_states if s.name != self._current.name]
        if not candidates:
            return self.normal_states[0]
        return candidates[self._rng.integers(len(candidates))]
