"""Data records describing a simulated live social video stream.

The original evaluation uses recordings downloaded from Bilibili and Twitch.
Those recordings are not redistributable and cannot be processed offline here,
so the reproduction works on *simulated* streams (see
:mod:`repro.streams.generator`).  The records in this module are the common
currency between the simulator, the feature-extraction pipeline and the
detectors:

* :class:`Comment` — a single audience message with timestamp and text.
* :class:`VideoSegment` — one 64-frame sliding-window segment, carrying the
  latent "motion content" the simulated I3D extractor consumes instead of raw
  pixels, plus the ground-truth anomaly label.
* :class:`SocialVideoStream` — an ordered collection of segments, the
  per-second comment counts and the raw comments for a whole stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

import numpy as np

__all__ = ["Comment", "VideoSegment", "SocialVideoStream"]


@dataclass(frozen=True)
class Comment:
    """A single real-time audience comment (bullet comment / live chat line)."""

    timestamp: float
    """Stream time in seconds at which the comment was posted."""

    text: str
    """Comment text (synthetic, drawn from the audience vocabulary)."""

    sentiment: float = 0.0
    """Latent sentiment used to generate the text, in [-1, 1].  The feature
    pipeline re-estimates sentiment from the text; this field only exists so
    tests can check the estimator against the generating value."""


@dataclass(frozen=True)
class VideoSegment:
    """One sliding-window video segment of the stream.

    Attributes
    ----------
    index:
        Position of the segment in the stream (0-based).
    start_time / end_time:
        Segment boundaries in seconds.
    motion_content:
        Latent per-frame motion descriptor of shape ``(frames, channels)``.
        This is the simulator's stand-in for raw pixels: the
        :class:`repro.features.i3d.SimulatedI3DExtractor` maps it to the 400-d
        action-recognition feature, the same way the real system maps frames
        through ResNet50-I3D.
    action_state:
        Name of the latent influencer behaviour state dominating the segment.
    is_anomaly:
        Ground-truth label (True when the segment overlaps an injected
        anomalous action with audience reaction).
    attractiveness:
        Latent attractiveness of the influencer's action in [0, 1]; drives the
        audience burst process and is exposed for analysis only.
    """

    index: int
    start_time: float
    end_time: float
    motion_content: np.ndarray
    action_state: str
    is_anomaly: bool
    attractiveness: float

    def duration(self) -> float:
        """Segment length in seconds."""
        return self.end_time - self.start_time


@dataclass
class SocialVideoStream:
    """A complete simulated social live video stream.

    The stream couples three aligned timelines: the per-segment video content,
    the per-second audience comment counts, and the raw comments.  Detectors
    never read the ground-truth labels; they are only consumed by the
    evaluation harness.
    """

    name: str
    segments: List[VideoSegment]
    comments: List[Comment]
    comment_counts: np.ndarray
    """Per-second number of comments, length = stream duration in seconds."""

    frame_rate: int = 25
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.comment_counts = np.asarray(self.comment_counts, dtype=np.float64)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def duration(self) -> float:
        """Stream length in seconds."""
        return float(len(self.comment_counts))

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    @property
    def labels(self) -> np.ndarray:
        """Ground-truth anomaly labels per segment (1 = anomaly)."""
        return np.array([int(segment.is_anomaly) for segment in self.segments], dtype=np.int64)

    @property
    def anomaly_rate(self) -> float:
        """Fraction of segments labelled anomalous."""
        if not self.segments:
            return 0.0
        return float(self.labels.mean())

    def __iter__(self) -> Iterator[VideoSegment]:
        return iter(self.segments)

    def __len__(self) -> int:
        return len(self.segments)

    # ------------------------------------------------------------------ #
    # Slicing and composition
    # ------------------------------------------------------------------ #
    def comments_between(self, start: float, end: float) -> List[Comment]:
        """Comments posted in the half-open time interval ``[start, end)``."""
        return [c for c in self.comments if start <= c.timestamp < end]

    def counts_between(self, start: float, end: float) -> np.ndarray:
        """Per-second comment counts covering ``[start, end)`` (clipped to the stream)."""
        lo = max(0, int(np.floor(start)))
        hi = min(len(self.comment_counts), int(np.ceil(end)))
        if hi <= lo:
            return np.zeros(0)
        return self.comment_counts[lo:hi]

    def slice_time(self, start: float, end: float, name: str | None = None) -> "SocialVideoStream":
        """Return the sub-stream covering ``[start, end)`` seconds.

        Segment indices are re-numbered from zero and timestamps are shifted
        so the slice behaves like a standalone stream; this is how the
        train/test and hourly-update splits are produced.
        """
        if end <= start:
            raise ValueError(f"invalid slice [{start}, {end})")
        selected = [s for s in self.segments if s.start_time >= start and s.end_time <= end]
        segments = [
            VideoSegment(
                index=i,
                start_time=s.start_time - start,
                end_time=s.end_time - start,
                motion_content=s.motion_content,
                action_state=s.action_state,
                is_anomaly=s.is_anomaly,
                attractiveness=s.attractiveness,
            )
            for i, s in enumerate(selected)
        ]
        comments = [
            Comment(timestamp=c.timestamp - start, text=c.text, sentiment=c.sentiment)
            for c in self.comments
            if start <= c.timestamp < end
        ]
        lo, hi = int(np.floor(start)), int(np.ceil(end))
        counts = self.comment_counts[lo:hi].copy()
        return SocialVideoStream(
            name=name or f"{self.name}[{start:.0f}:{end:.0f}]",
            segments=segments,
            comments=comments,
            comment_counts=counts,
            frame_rate=self.frame_rate,
            metadata=dict(self.metadata),
        )

    def split(self, fraction: float) -> tuple["SocialVideoStream", "SocialVideoStream"]:
        """Split the stream in time into ``(head, tail)`` at ``fraction`` of its duration."""
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        cut = self.duration * fraction
        return (
            self.slice_time(0.0, cut, name=f"{self.name}-head"),
            self.slice_time(cut, self.duration, name=f"{self.name}-tail"),
        )

    def normal_segments(self) -> List[VideoSegment]:
        """Segments labelled normal (used to build training sets)."""
        return [s for s in self.segments if not s.is_anomaly]

    def anomalous_segments(self) -> List[VideoSegment]:
        """Segments labelled anomalous."""
        return [s for s in self.segments if s.is_anomaly]
