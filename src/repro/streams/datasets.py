"""Dataset presets mirroring the paper's four evaluation datasets.

The paper evaluates on 212 hours of Bilibili and Twitch recordings organised
into four datasets:

* **INF** — 31 h of influencer (live-commerce) videos, highly interactive;
* **SPE** — 21 h of speech videos, formal talks, speakers do not follow chat;
* **TED** — 32 h of TED-style talks, also one-way;
* **TWI** — 128 h of Twitch gaming streams, the largest and most interactive.

The recordings themselves are not redistributable and cannot be processed
offline, so each preset maps to a :class:`repro.streams.generator.StreamProfile`
that reproduces the dataset's *structural* characteristics: interactivity
level, whether the presenter reacts to the audience, anomaly density and
presentation-style variety.  Durations default to a laptop-scale fraction of
the paper's hours (the ratio between datasets is preserved) and can be scaled
up through ``duration_scale``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..utils.config import StreamProtocol
from .events import SocialVideoStream
from .generator import SocialStreamGenerator, StreamProfile

__all__ = [
    "DATASET_NAMES",
    "DatasetSpec",
    "dataset_profile",
    "load_dataset",
    "load_all_datasets",
]

DATASET_NAMES: Tuple[str, ...] = ("INF", "SPE", "TED", "TWI")

#: Hours in the paper for each dataset; used only to keep relative sizes.
_PAPER_HOURS: Dict[str, float] = {"INF": 31.0, "SPE": 21.0, "TED": 32.0, "TWI": 128.0}

#: Hours of each dataset used for the paper's test streams (Section VI-A).
_PAPER_TEST_HOURS: Dict[str, float] = {"INF": 6.0, "SPE": 4.0, "TED": 6.0, "TWI": 24.0}

_PROFILES: Dict[str, StreamProfile] = {
    # Live-commerce influencers: frequent attractive actions, strong two-way
    # coupling, lively chat.
    "INF": StreamProfile(
        name="INF",
        normal_states=4,
        anomaly_rate=0.010,
        anomaly_duration=8.0,
        switch_probability=0.015,
        audience_reactivity=0.5,
        base_comment_rate=2.5,
        burst_gain=9.0,
        reaction_delay=2,
        interactivity=1.0,
        anomaly_visual_shift=0.10,
        distractor_rate=0.015,
    ),
    # Formal speeches: few style changes, speaker ignores chat, quiet audience.
    "SPE": StreamProfile(
        name="SPE",
        normal_states=3,
        anomaly_rate=0.012,
        anomaly_duration=7.0,
        switch_probability=0.006,
        audience_reactivity=0.0,
        base_comment_rate=1.0,
        burst_gain=9.0,
        reaction_delay=2,
        interactivity=0.6,
        anomaly_visual_shift=0.12,
        distractor_rate=0.008,
    ),
    # TED-style talks: polished delivery, one-way, moderate audience.
    "TED": StreamProfile(
        name="TED",
        normal_states=3,
        anomaly_rate=0.012,
        anomaly_duration=7.0,
        switch_probability=0.008,
        audience_reactivity=0.0,
        base_comment_rate=1.5,
        burst_gain=9.0,
        reaction_delay=2,
        interactivity=0.8,
        anomaly_visual_shift=0.12,
        distractor_rate=0.008,
    ),
    # Twitch gaming: most interactive, fast chat, frequent hype moments.
    "TWI": StreamProfile(
        name="TWI",
        normal_states=5,
        anomaly_rate=0.012,
        anomaly_duration=10.0,
        switch_probability=0.020,
        audience_reactivity=0.6,
        base_comment_rate=4.0,
        burst_gain=10.0,
        reaction_delay=1,
        interactivity=1.4,
        anomaly_visual_shift=0.10,
        distractor_rate=0.02,
    ),
}


@dataclass(frozen=True)
class DatasetSpec:
    """A fully materialised dataset: train and test streams plus its profile."""

    name: str
    profile: StreamProfile
    train: SocialVideoStream
    test: SocialVideoStream

    @property
    def description(self) -> str:
        return (
            f"{self.name}: train {self.train.duration:.0f}s "
            f"({self.train.num_segments} segments), test {self.test.duration:.0f}s "
            f"({self.test.num_segments} segments, anomaly rate {self.test.anomaly_rate:.3f})"
        )


def dataset_profile(name: str) -> StreamProfile:
    """Return the :class:`StreamProfile` preset for a dataset name."""
    key = name.upper()
    if key not in _PROFILES:
        raise KeyError(f"unknown dataset '{name}'; options: {DATASET_NAMES}")
    return _PROFILES[key]


def load_dataset(
    name: str,
    duration_scale: float = 1.0,
    base_train_seconds: float = 600.0,
    base_test_seconds: float = 300.0,
    protocol: StreamProtocol | None = None,
    seed: int = 7,
) -> DatasetSpec:
    """Simulate one dataset (train + test streams).

    Parameters
    ----------
    name:
        One of ``INF``, ``SPE``, ``TED``, ``TWI``.
    duration_scale:
        Multiplier on the base durations; ``1.0`` yields laptop-scale streams,
        larger values approach the paper's hours.
    base_train_seconds / base_test_seconds:
        Durations (before scaling) of the INF-sized dataset; the other
        datasets are scaled by their share of the paper's hours.
    protocol:
        Segmentation protocol; defaults to the paper's (64-frame windows,
        25-frame stride, 25 fps).
    seed:
        Base random seed; train and test streams use different derived seeds.
    """
    key = name.upper()
    profile = dataset_profile(key)
    hours_ratio = _PAPER_HOURS[key] / _PAPER_HOURS["INF"]
    test_ratio = max(1.0, _PAPER_TEST_HOURS[key] / _PAPER_TEST_HOURS["INF"])
    train_seconds = max(64.0, base_train_seconds * duration_scale * hours_ratio)
    test_seconds = max(64.0, base_test_seconds * duration_scale * test_ratio)

    generator = SocialStreamGenerator(profile, protocol=protocol, seed=seed)
    train = generator.generate(train_seconds, name=f"{key}-train", seed=seed * 1000 + 1)
    test = generator.generate(test_seconds, name=f"{key}-test", seed=seed * 1000 + 2)
    return DatasetSpec(name=key, profile=profile, train=train, test=test)


def load_all_datasets(
    duration_scale: float = 1.0,
    base_train_seconds: float = 600.0,
    base_test_seconds: float = 300.0,
    protocol: StreamProtocol | None = None,
    seed: int = 7,
) -> Dict[str, DatasetSpec]:
    """Simulate all four datasets with consistent settings."""
    return {
        name: load_dataset(
            name,
            duration_scale=duration_scale,
            base_train_seconds=base_train_seconds,
            base_test_seconds=base_test_seconds,
            protocol=protocol,
            seed=seed + index,
        )
        for index, name in enumerate(DATASET_NAMES)
    }
