"""Audience comment process and synthetic comment text.

The audience side of a live social video stream is modelled as a marked point
process over one-second slots:

* a *base rate* of background chatter (negative-binomial counts, which match
  the bursty, over-dispersed nature of real bullet-comment traffic better than
  a plain Poisson);
* a *delayed excitement response*: when the influencer performs an attractive
  action, the expected comment rate is multiplied for the following seconds,
  decaying exponentially — this reproduces the "abrupt quantity changes of
  real-time comments" the paper describes (Fig. 2a, Fig. 3);
* comment *text* drawn from a small vocabulary whose sentiment skews positive
  during excitement bursts, so the word-embedding and sentiment features carry
  signal about the anomaly as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .events import Comment

__all__ = ["AudienceModel", "CommentTextGenerator"]


class CommentTextGenerator:
    """Generates short synthetic comment strings with controllable sentiment."""

    NEUTRAL = [
        "hello everyone",
        "watching from home",
        "what product is this",
        "stream quality is fine",
        "hi streamer",
        "first time here",
        "what time does it end",
        "is this live",
    ]
    POSITIVE = [
        "wow amazing",
        "this is awesome",
        "love it so much",
        "great great great",
        "take my money",
        "best stream ever",
        "so cool wow",
        "buying this now",
    ]
    NEGATIVE = [
        "this is boring",
        "not interested",
        "bad audio today",
        "too expensive",
        "skip this part",
        "disappointing demo",
    ]

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def generate(self, excitement: float) -> tuple[str, float]:
        """Draw one comment.

        Parameters
        ----------
        excitement:
            Value in [0, 1]; higher excitement makes positive, enthusiastic
            comments more likely.

        Returns
        -------
        (text, sentiment)
            The comment text and the latent sentiment in [-1, 1] of the pool
            it was drawn from.
        """
        excitement = float(np.clip(excitement, 0.0, 1.0))
        positive_probability = 0.2 + 0.7 * excitement
        negative_probability = 0.15 * (1.0 - excitement)
        draw = self._rng.random()
        if draw < positive_probability:
            pool, sentiment = self.POSITIVE, 0.8
        elif draw < positive_probability + negative_probability:
            pool, sentiment = self.NEGATIVE, -0.6
        else:
            pool, sentiment = self.NEUTRAL, 0.0
        text = pool[self._rng.integers(len(pool))]
        return text, sentiment

    def generate_directed(self, sentiment: float) -> tuple[str, float]:
        """Draw one comment from the pool matching a target sentiment.

        Scenario injections (flash crowds, coordinated raids) need comments
        with a *chosen* polarity rather than the excitement-driven mixture:
        a raid floods negative lines, a flash crowd mostly positive ones.
        ``sentiment`` above ``0.3`` selects the positive pool, below ``-0.3``
        the negative pool, anything between the neutral pool; the latent
        sentiment of the chosen pool is returned alongside the text.
        """
        if sentiment > 0.3:
            pool, latent = self.POSITIVE, 0.8
        elif sentiment < -0.3:
            pool, latent = self.NEGATIVE, -0.6
        else:
            pool, latent = self.NEUTRAL, 0.0
        text = pool[self._rng.integers(len(pool))]
        return text, latent


@dataclass
class _ExcitementState:
    """Internal exponential-decay excitement level of the audience."""

    level: float = 0.0
    decay: float = 0.75

    def update(self, stimulus: float) -> float:
        self.level = self.level * self.decay + stimulus
        return self.level


class AudienceModel:
    """Audience reaction process producing per-second comment counts and text.

    Parameters
    ----------
    base_rate:
        Mean number of background comments per second.
    burst_gain:
        Multiplier applied to the rate at full excitement.
    reaction_delay:
        Delay, in seconds, between an attractive action and the audience
        response peak (paper: comments to an action "could appear over a
        period" after it).
    dispersion:
        Negative-binomial dispersion (smaller = burstier counts).
    interactivity:
        Overall scale of audience participation (TWI > INF > TED > SPE).
    rng:
        Random generator.
    """

    def __init__(
        self,
        base_rate: float = 2.0,
        burst_gain: float = 8.0,
        reaction_delay: int = 2,
        dispersion: float = 5.0,
        interactivity: float = 1.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if base_rate < 0:
            raise ValueError("base_rate must be non-negative")
        if burst_gain < 1.0:
            raise ValueError("burst_gain must be at least 1")
        if reaction_delay < 0:
            raise ValueError("reaction_delay must be non-negative")
        if dispersion <= 0:
            raise ValueError("dispersion must be positive")
        self.base_rate = base_rate
        self.burst_gain = burst_gain
        self.reaction_delay = int(reaction_delay)
        self.dispersion = dispersion
        self.interactivity = interactivity
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._text = CommentTextGenerator(self._rng)
        self._excitement = _ExcitementState()
        self._pending_stimuli: List[float] = []

    def reset(self) -> None:
        """Clear excitement and pending stimuli."""
        self._excitement = _ExcitementState()
        self._pending_stimuli = []

    # ------------------------------------------------------------------ #
    # Per-second simulation
    # ------------------------------------------------------------------ #
    def step(self, attractiveness: float, second: int) -> tuple[int, List[Comment]]:
        """Simulate one second of audience behaviour.

        Parameters
        ----------
        attractiveness:
            The influencer's current action attractiveness in [0, 1].
        second:
            Absolute stream time of this slot (used for comment timestamps).

        Returns
        -------
        (count, comments)
            The number of comments posted during this second and the comment
            records themselves.
        """
        attractiveness = float(np.clip(attractiveness, 0.0, 1.0))
        # The stimulus created *now* only reaches the excitement level after
        # ``reaction_delay`` seconds (typing delay of the audience).
        self._pending_stimuli.append(attractiveness)
        if len(self._pending_stimuli) > self.reaction_delay:
            stimulus = self._pending_stimuli.pop(0)
        else:
            stimulus = 0.0
        excitement = self._excitement.update(stimulus)
        excitement = float(np.clip(excitement, 0.0, 2.0)) / 2.0

        rate = self.interactivity * self.base_rate * (1.0 + (self.burst_gain - 1.0) * excitement)
        count = int(self._negative_binomial(rate))
        comments = []
        for _ in range(count):
            text, sentiment = self._text.generate(excitement)
            timestamp = second + float(self._rng.random())
            comments.append(Comment(timestamp=timestamp, text=text, sentiment=sentiment))
        return count, comments

    def current_excitement(self) -> float:
        """Current (normalised) audience excitement level."""
        return float(np.clip(self._excitement.level, 0.0, 2.0)) / 2.0

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _negative_binomial(self, mean: float) -> int:
        """Draw an over-dispersed count with the given mean."""
        if mean <= 0:
            return 0
        # Parameterise NB by mean and dispersion r: p = r / (r + mean).
        r = self.dispersion
        p = r / (r + mean)
        return int(self._rng.negative_binomial(r, p))
