"""End-to-end simulator of live social video streams.

:class:`SocialStreamGenerator` couples the influencer behaviour process
(:mod:`repro.streams.actions`) and the audience reaction process
(:mod:`repro.streams.comments`) on a one-second timeline, then cuts the
resulting stream into 64-frame sliding-window segments exactly as the paper's
feature-extraction stage does (64-frame window, 25-frame stride at 25 fps).

The two processes are coupled in both directions when the dataset profile
allows it (INF, TWI): attractive influencer actions raise the audience comment
rate after a short delay, and sustained audience pressure can make the
influencer switch behaviour — which is precisely the mutual influence CLSTM is
designed to model.  For SPE/TED-style streams the backwards channel is
disabled (speakers do not react to the chat), matching the paper's observation
that CLSTM and CLSTM-S perform identically there.

Ground truth: a segment is labelled anomalous when it overlaps an injected
attractive action *and* the audience responds with an elevated comment rate,
mirroring Definition 1 (an anomaly needs both the influencer action and the
audience reaction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..utils.config import StreamProtocol
from .actions import InfluencerBehaviourModel
from .comments import AudienceModel, CommentTextGenerator
from .events import Comment, SocialVideoStream, VideoSegment

__all__ = ["StreamProfile", "ProfilePerturbation", "SocialStreamGenerator"]


@dataclass(frozen=True)
class StreamProfile:
    """Parameters describing one dataset's stream characteristics.

    The four dataset presets in :mod:`repro.streams.datasets` are instances of
    this profile; exposing it publicly lets users simulate their own platform
    mixes.
    """

    name: str
    motion_channels: int = 16
    normal_states: int = 4
    anomaly_rate: float = 0.008
    """Per-second probability of an attractive (anomalous) action starting."""

    anomaly_duration: float = 8.0
    switch_probability: float = 0.01
    audience_reactivity: float = 0.3
    """Strength of the audience -> influencer coupling (0 disables it)."""

    base_comment_rate: float = 2.0
    burst_gain: float = 8.0
    reaction_delay: int = 2
    interactivity: float = 1.0
    """Overall audience participation scale (TWI is the most interactive)."""

    motion_noise: float = 0.05
    burst_label_threshold: float = 1.5
    """A segment only counts as an anomaly when its comment rate exceeds this
    multiple of the running baseline (Definition 1 requires the reaction)."""

    baseline_window_seconds: float = 60.0
    """Length of the trailing window used for the running comment-rate
    baseline that ``burst_label_threshold`` is compared against.  The
    baseline is *causal*: only seconds strictly before the segment window
    contribute, and seconds inside (or shortly after) injected anomalies are
    excluded so a sustained burst cannot inflate its own baseline."""

    anomaly_visual_shift: float = 0.35
    """Visual distinctiveness of anomalous actions (see InfluencerBehaviourModel)."""

    distractor_rate: float = 0.02
    """Per-second probability of a visually-novel but unattractive distractor action."""

    distractor_duration: float = 4.0
    """Mean duration (seconds) of distractor actions."""


@dataclass(frozen=True)
class ProfilePerturbation:
    """One scheduled disturbance applied to a window of the simulated stream.

    Perturbations are the building blocks of the adversarial scenario suite
    (:mod:`repro.scenarios`): a flash crowd is a ramped comment-rate
    multiplier, a coordinated raid adds a burst of negative comments, a
    regime switch redraws the influencer's behaviour signatures, and so on.
    They are applied on top of the base :class:`StreamProfile` dynamics
    during ``[start_second, end_second)``.

    All injected-comment randomness comes from a dedicated injection RNG
    derived from the stream seed, never from the main simulation RNG —
    so a stream with perturbations is *bitwise identical* to the
    unperturbed stream outside the perturbed windows (prefix invariance),
    and an empty schedule reproduces the unperturbed stream exactly.
    """

    start_second: float
    end_second: float
    ramp: str = "step"
    """Intensity envelope inside the window: ``"step"`` (full strength
    immediately) or ``"linear"`` (ramps 0 -> 1 across the window)."""

    comment_rate_add: float = 0.0
    """Extra injected comments per second at full strength (flash crowd / raid)."""

    comment_rate_multiplier: float = 1.0
    """Multiplier on the injected comment count (compounds with ``comment_rate_add``)."""

    heavy_tail_alpha: Optional[float] = None
    """When set, injected counts are drawn from a Pareto(alpha) scaled by the
    injection rate instead of a Poisson — modelling heavy-tailed fan-in."""

    injected_sentiment: float = 0.5
    """Target sentiment of injected comments (raids use negative values)."""

    anomaly_rate_multiplier: float = 1.0
    """Scales the influencer's per-second anomaly probability inside the window."""

    force_anomaly: bool = False
    """Deterministically start an attractive action at the window start."""

    regime_shift: bool = False
    """Redraw all behaviour-state signatures at the window start (regime switch)."""

    def __post_init__(self) -> None:
        if self.start_second < 0:
            raise ValueError("start_second must be non-negative")
        if self.end_second <= self.start_second:
            raise ValueError("end_second must be greater than start_second")
        if self.ramp not in ("step", "linear"):
            raise ValueError("ramp must be 'step' or 'linear'")
        if self.comment_rate_add < 0:
            raise ValueError("comment_rate_add must be non-negative")
        if self.comment_rate_multiplier < 0:
            raise ValueError("comment_rate_multiplier must be non-negative")
        if self.heavy_tail_alpha is not None and self.heavy_tail_alpha <= 0:
            raise ValueError("heavy_tail_alpha must be positive")
        if self.anomaly_rate_multiplier < 0:
            raise ValueError("anomaly_rate_multiplier must be non-negative")

    def active(self, second: int) -> bool:
        """Whether this perturbation covers the given one-second slot."""
        return self.start_second <= second < self.end_second

    def strength(self, second: int) -> float:
        """Envelope value in [0, 1] for the given second."""
        if not self.active(second):
            return 0.0
        if self.ramp == "step":
            return 1.0
        span = self.end_second - self.start_second
        return float((second - self.start_second) / span)


class SocialStreamGenerator:
    """Simulate :class:`SocialVideoStream` objects from a :class:`StreamProfile`."""

    def __init__(
        self,
        profile: StreamProfile,
        protocol: StreamProtocol | None = None,
        seed: int = 0,
    ) -> None:
        self.profile = profile
        self.protocol = protocol if protocol is not None else StreamProtocol()
        self.seed = seed

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def generate(
        self,
        duration_seconds: float,
        name: Optional[str] = None,
        seed: Optional[int] = None,
        perturbations: Sequence[ProfilePerturbation] = (),
    ) -> SocialVideoStream:
        """Generate a stream of the requested duration.

        Parameters
        ----------
        duration_seconds:
            Length of the stream; at least one segment window is required.
        name:
            Stream name; defaults to the profile name.
        seed:
            Optional override of the generator seed (used to create multiple
            independent streams from the same profile).
        perturbations:
            Optional schedule of :class:`ProfilePerturbation` windows applied
            on top of the base profile dynamics.  Injection randomness uses a
            dedicated RNG derived from the stream seed, so the stream is
            bitwise identical to the unperturbed one outside the perturbed
            windows, and an empty schedule reproduces it exactly.
        """
        protocol = self.protocol
        seconds = int(duration_seconds)
        min_seconds = int(np.ceil(protocol.segment_frames / protocol.frame_rate))
        if seconds < min_seconds:
            raise ValueError(
                f"duration must cover at least one segment ({min_seconds}s), got {duration_seconds}"
            )
        actual_seed = self.seed if seed is None else seed
        rng = np.random.default_rng(actual_seed)
        # Injected comments draw from their own RNG stream so perturbations
        # never advance the main simulation RNG (prefix invariance).
        injection_rng = np.random.default_rng([actual_seed, 0x5CE7A810])
        injection_text = CommentTextGenerator(injection_rng)
        perturbations = tuple(perturbations)
        influencer = InfluencerBehaviourModel(
            motion_channels=self.profile.motion_channels,
            normal_states=self.profile.normal_states,
            anomaly_rate=self.profile.anomaly_rate,
            anomaly_duration=self.profile.anomaly_duration,
            switch_probability=self.profile.switch_probability,
            audience_reactivity=self.profile.audience_reactivity,
            anomaly_visual_shift=self.profile.anomaly_visual_shift,
            distractor_rate=self.profile.distractor_rate,
            distractor_duration=self.profile.distractor_duration,
            rng=np.random.default_rng(rng.integers(2**63)),
            # Behaviour-state signatures (the influencers' visual styles) are
            # derived from the generator's base seed so every stream of a
            # dataset — train, test, incoming chunks — depicts the same
            # presenters, while trajectories remain independent.
            signature_rng=np.random.default_rng(self.seed),
        )
        audience = AudienceModel(
            base_rate=self.profile.base_comment_rate,
            burst_gain=self.profile.burst_gain,
            reaction_delay=self.profile.reaction_delay,
            interactivity=self.profile.interactivity,
            rng=np.random.default_rng(rng.integers(2**63)),
        )

        per_second_states = []
        per_second_attractiveness = np.zeros(seconds)
        per_second_anomalous = np.zeros(seconds, dtype=bool)
        comment_counts = np.zeros(seconds)
        comments: List[Comment] = []

        audience_pressure = 0.0
        fired: set = set()
        for second in range(seconds):
            active = [p for p in perturbations if p.active(second)]
            anomaly_scale = 1.0
            for perturbation in active:
                anomaly_scale *= perturbation.anomaly_rate_multiplier
                if id(perturbation) not in fired:
                    fired.add(id(perturbation))
                    if perturbation.regime_shift:
                        influencer.shift_regime()
                    if perturbation.force_anomaly:
                        influencer.force_anomaly(self.profile.anomaly_duration)
            state = influencer.step(
                audience_pressure=audience_pressure,
                anomaly_rate_scale=anomaly_scale,
            )
            count, second_comments = audience.step(state.attractiveness, second)
            for perturbation in active:
                injected = self._injected_comments(
                    perturbation, second, injection_rng, injection_text
                )
                count += len(injected)
                second_comments = second_comments + injected
            per_second_states.append(state)
            per_second_attractiveness[second] = state.attractiveness
            per_second_anomalous[second] = state.is_anomalous
            comment_counts[second] = count
            comments.extend(second_comments)
            # Pressure felt by the influencer next second: audience excitement,
            # only transmitted when the platform/profile supports it.
            if self.profile.audience_reactivity > 0:
                audience_pressure = audience.current_excitement()
            else:
                audience_pressure = 0.0

        segments = self._build_segments(
            influencer=influencer,
            per_second_states=per_second_states,
            per_second_anomalous=per_second_anomalous,
            per_second_attractiveness=per_second_attractiveness,
            comment_counts=comment_counts,
            seconds=seconds,
            rng=rng,
        )
        metadata: Dict[str, float] = {
            "profile_anomaly_rate": self.profile.anomaly_rate,
            "interactivity": self.profile.interactivity,
            "audience_reactivity": self.profile.audience_reactivity,
        }
        return SocialVideoStream(
            name=name or self.profile.name,
            segments=segments,
            comments=comments,
            comment_counts=comment_counts,
            frame_rate=protocol.frame_rate,
            metadata=metadata,
        )

    def generate_many(self, count: int, duration_seconds: float) -> List[SocialVideoStream]:
        """Generate ``count`` independent streams of equal duration."""
        if count <= 0:
            raise ValueError("count must be positive")
        return [
            self.generate(duration_seconds, name=f"{self.profile.name}-{i}", seed=self.seed + i)
            for i in range(count)
        ]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _injected_comments(
        self,
        perturbation: ProfilePerturbation,
        second: int,
        rng: np.random.Generator,
        text_generator: CommentTextGenerator,
    ) -> List[Comment]:
        """Draw the extra comments a perturbation injects into one second."""
        strength = perturbation.strength(second)
        rate = (
            perturbation.comment_rate_add
            * perturbation.comment_rate_multiplier
            * strength
        )
        if rate <= 0:
            return []
        if perturbation.heavy_tail_alpha is not None:
            # Pareto-distributed burst sizes: most seconds get a trickle, a
            # few get enormous spikes (heavy-tailed stream fan-in).
            count = int(rate * (1.0 + rng.pareto(perturbation.heavy_tail_alpha)))
        else:
            count = int(rng.poisson(rate))
        injected: List[Comment] = []
        for _ in range(count):
            text, sentiment = text_generator.generate_directed(
                perturbation.injected_sentiment
            )
            timestamp = second + float(rng.random())
            injected.append(Comment(timestamp=timestamp, text=text, sentiment=sentiment))
        return injected

    def _build_segments(
        self,
        influencer: InfluencerBehaviourModel,
        per_second_states,
        per_second_anomalous: np.ndarray,
        per_second_attractiveness: np.ndarray,
        comment_counts: np.ndarray,
        seconds: int,
        rng: np.random.Generator,
    ) -> List[VideoSegment]:
        protocol = self.protocol
        frame_rate = protocol.frame_rate
        window = protocol.segment_frames
        stride = protocol.stride_frames
        total_frames = seconds * frame_rate

        # Baseline comment rate used to decide whether the audience actually
        # reacted to an attractive action (Definition 1).  The baseline is a
        # *causal* trailing-window mean: only seconds strictly before the
        # segment window contribute, and seconds inside injected anomalies
        # (plus the delayed reaction tail) are excluded, so labels never
        # depend on future data and sustained bursts cannot suppress their
        # own labels by inflating a whole-stream mean.
        reaction_tail = self.profile.reaction_delay + 2
        excluded = per_second_anomalous.copy()
        for offset in range(1, reaction_tail + 1):
            if offset < seconds:
                excluded[offset:] |= per_second_anomalous[:-offset]
        baseline_window = max(int(round(self.profile.baseline_window_seconds)), 1)
        fallback_baseline = max(
            self.profile.interactivity * self.profile.base_comment_rate, 1e-6
        )

        def causal_baseline(window_start_second: int) -> float:
            lo = max(0, window_start_second - baseline_window)
            hi = window_start_second
            if hi <= lo:
                return fallback_baseline
            usable = ~excluded[lo:hi]
            if not usable.any():
                return fallback_baseline
            return max(float(comment_counts[lo:hi][usable].mean()), 1e-6)

        segments: List[VideoSegment] = []
        index = 0
        start_frame = 0
        while start_frame + window <= total_frames:
            start_time = start_frame / frame_rate
            end_time = (start_frame + window) / frame_rate
            covered_seconds = range(int(start_time), min(seconds, int(np.ceil(end_time))))
            states = [per_second_states[s] for s in covered_seconds]
            # Dominant state = the state covering the most seconds of the window.
            names = [s.name for s in states]
            dominant = max(set(names), key=names.count)
            dominant_state = next(s for s in states if s.name == dominant)

            frames = np.concatenate(
                [
                    influencer.motion_frames(per_second_states[s], frame_rate, noise=self.profile.motion_noise)
                    for s in covered_seconds
                ],
                axis=0,
            )[: window]
            if frames.shape[0] < window:
                pad = np.tile(frames[-1:], (window - frames.shape[0], 1))
                frames = np.concatenate([frames, pad], axis=0)

            overlaps_anomaly = bool(per_second_anomalous[list(covered_seconds)].any())
            # Audience reaction window: the segment itself plus the delayed
            # response that lands a few seconds later.  The peak comment rate
            # inside the window is compared with the stream's baseline rate —
            # Definition 1 requires the action to actually draw a reaction.
            lo = int(start_time)
            hi = min(seconds, int(np.ceil(end_time)) + reaction_tail)
            reaction_rate = float(comment_counts[lo:hi].max()) if hi > lo else 0.0
            baseline = causal_baseline(lo)
            audience_reacted = reaction_rate >= self.profile.burst_label_threshold * baseline
            is_anomaly = overlaps_anomaly and audience_reacted

            attractiveness = float(per_second_attractiveness[list(covered_seconds)].max())
            segments.append(
                VideoSegment(
                    index=index,
                    start_time=start_time,
                    end_time=end_time,
                    motion_content=frames,
                    action_state=dominant_state.name,
                    is_anomaly=is_anomaly,
                    attractiveness=attractiveness,
                )
            )
            index += 1
            start_frame += stride
        return segments
