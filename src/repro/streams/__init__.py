"""Simulated live social video streams (substitute for Bilibili/Twitch data).

The package provides the latent influencer behaviour process, the audience
comment process, the coupled stream generator and the INF/SPE/TED/TWI dataset
presets used throughout the evaluation.
"""

from .events import Comment, VideoSegment, SocialVideoStream
from .actions import ActionState, InfluencerBehaviourModel
from .comments import AudienceModel, CommentTextGenerator
from .generator import StreamProfile, ProfilePerturbation, SocialStreamGenerator
from .datasets import (
    DATASET_NAMES,
    DatasetSpec,
    dataset_profile,
    load_dataset,
    load_all_datasets,
)

__all__ = [
    "Comment",
    "VideoSegment",
    "SocialVideoStream",
    "ActionState",
    "InfluencerBehaviourModel",
    "AudienceModel",
    "CommentTextGenerator",
    "StreamProfile",
    "ProfilePerturbation",
    "SocialStreamGenerator",
    "DATASET_NAMES",
    "DatasetSpec",
    "dataset_profile",
    "load_dataset",
    "load_all_datasets",
]
