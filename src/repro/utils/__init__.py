"""Shared utilities: configuration, RNG management, validation, timing."""

from .config import (
    ConfigBase,
    StreamProtocol,
    ModelConfig,
    TrainingConfig,
    DetectionConfig,
    DurabilityConfig,
    ServingConfig,
    ExecutorConfig,
    ShardingConfig,
    UpdateConfig,
    ServerConfig,
)
from .rng import make_rng, spawn_rngs, derive_rng
from .timer import Stopwatch, TimingAccumulator
from . import validation

__all__ = [
    "ConfigBase",
    "StreamProtocol",
    "ModelConfig",
    "TrainingConfig",
    "DetectionConfig",
    "DurabilityConfig",
    "ServingConfig",
    "ExecutorConfig",
    "ShardingConfig",
    "UpdateConfig",
    "ServerConfig",
    "make_rng",
    "spawn_rngs",
    "derive_rng",
    "Stopwatch",
    "TimingAccumulator",
    "validation",
]
