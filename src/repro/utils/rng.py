"""Deterministic random-number management.

Every stochastic component in the reproduction (stream simulator, feature
extractors, model initialisation, training shuffles) takes an explicit
``numpy.random.Generator``.  This module provides helpers to derive
independent child generators from a single experiment seed so that whole
experiments — including the benchmark harness — are bit-for-bit reproducible.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["make_rng", "spawn_rngs", "derive_rng"]


def make_rng(seed: int | None = 0) -> np.random.Generator:
    """Create a ``numpy.random.Generator`` from an integer seed."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed."""
    if count <= 0:
        raise ValueError("count must be positive")
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def derive_rng(seed: int, *labels: str | int) -> np.random.Generator:
    """Derive a generator from a seed and a sequence of labels.

    Two calls with the same ``(seed, labels)`` return generators producing the
    same stream; different labels give independent streams.  Used to tie a
    component's randomness to its role (e.g. ``derive_rng(7, "INF", "comments")``).
    """
    material = [seed] + [_label_to_int(label) for label in labels]
    return np.random.default_rng(np.random.SeedSequence(material))


def _label_to_int(label: str | int) -> int:
    if isinstance(label, int):
        return label
    return int.from_bytes(label.encode("utf-8")[:8].ljust(8, b"\0"), "little") % (2**63)
