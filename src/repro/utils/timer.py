"""Lightweight timing utilities for the efficiency experiments.

The paper's efficiency evaluation (Fig. 11, Fig. 12, Section VI-C) reports
average per-segment detection time and model-update wall time.  These helpers
provide a context-manager stopwatch and a named accumulator that the
benchmark harness uses to collect those numbers.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = ["Stopwatch", "TimingAccumulator"]


@dataclass
class Stopwatch:
    """A resumable stopwatch measuring wall-clock seconds."""

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> "Stopwatch":
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch is not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    @contextmanager
    def measure(self) -> Iterator["Stopwatch"]:
        """Context manager form: ``with watch.measure(): ...``."""
        self.start()
        try:
            yield self
        finally:
            self.stop()


class TimingAccumulator:
    """Accumulates named timings and per-name call counts."""

    def __init__(self) -> None:
        self._totals: Dict[str, float] = defaultdict(float)
        self._counts: Dict[str, int] = defaultdict(int)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self._totals[name] += time.perf_counter() - start
            self._counts[name] += 1

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Record an externally measured duration."""
        self._totals[name] += seconds
        self._counts[name] += count

    def total(self, name: str) -> float:
        """Total seconds recorded under ``name``."""
        return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        """Number of measurements recorded under ``name``."""
        return self._counts.get(name, 0)

    def mean(self, name: str) -> float:
        """Mean seconds per measurement (0.0 when nothing was recorded)."""
        count = self._counts.get(name, 0)
        return self._totals.get(name, 0.0) / count if count else 0.0

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Snapshot of all timings: ``{name: {"total": ..., "count": ..., "mean": ...}}``."""
        return {
            name: {"total": self._totals[name], "count": self._counts[name], "mean": self.mean(name)}
            for name in self._totals
        }
