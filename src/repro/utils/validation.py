"""Input validation helpers shared across the library.

Validation failures raise :class:`ValueError`/:class:`TypeError` with messages
that name the offending argument, which keeps error reporting consistent in
the public API surface (stream generators, detectors, optimisation filters).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "require_positive",
    "require_non_negative",
    "require_in_range",
    "require_probability_vector",
    "require_matrix",
    "as_float_array",
]


def require_positive(name: str, value: float) -> float:
    """Ensure ``value`` is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Ensure ``value`` is zero or positive."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def require_in_range(name: str, value: float, low: float, high: float) -> float:
    """Ensure ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def require_probability_vector(name: str, vector: np.ndarray, tolerance: float = 1e-6) -> np.ndarray:
    """Ensure ``vector`` is a non-negative vector that sums to 1 (within tolerance)."""
    vector = np.asarray(vector, dtype=np.float64)
    if vector.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {vector.shape}")
    if np.any(vector < -tolerance):
        raise ValueError(f"{name} must be non-negative")
    total = float(vector.sum())
    if not np.isclose(total, 1.0, atol=max(tolerance, 1e-6) * max(1.0, abs(total))):
        raise ValueError(f"{name} must sum to 1, sums to {total}")
    return vector


def require_matrix(name: str, value: np.ndarray, columns: int | None = None) -> np.ndarray:
    """Ensure ``value`` is a 2-D array, optionally with a fixed column count."""
    value = np.asarray(value, dtype=np.float64)
    if value.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {value.shape}")
    if columns is not None and value.shape[1] != columns:
        raise ValueError(f"{name} must have {columns} columns, got {value.shape[1]}")
    return value


def as_float_array(name: str, values: Sequence[float] | np.ndarray) -> np.ndarray:
    """Convert ``values`` to a float array, rejecting NaN/inf entries."""
    array = np.asarray(values, dtype=np.float64)
    if array.size and not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return array
