"""Central configuration objects for the AOVLIS reproduction.

The paper fixes a number of protocol constants (64-frame segments with a
25-frame stride at 25 fps, sequence length q = 9, 400-dimensional action
features, learning rate 0.001, etc.).  Collecting them in frozen dataclasses
keeps the library, the examples and the benchmark harness consistent and makes
the choices visible to downstream users.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Union

__all__ = [
    "ConfigBase",
    "StreamProtocol",
    "ModelConfig",
    "TrainingConfig",
    "DetectionConfig",
]


class ConfigBase:
    """Dict and JSON round-trip shared by every configuration dataclass.

    ``to_dict`` has had no inverse since the seed; ``from_dict`` closes the
    loop with strict validation — unknown fields and wrong types raise a
    :class:`ValueError` that names the offending ``Class.field``, so a typo
    in a deployment file fails loudly instead of being silently dropped.
    ``to_json``/``from_json`` layer a reviewable file format on top (nested
    configuration dataclasses round-trip recursively).
    """

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (nested config dataclasses become nested dicts)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ConfigBase":
        """Inverse of :meth:`to_dict`; validation errors name the bad field."""
        if not isinstance(data, Mapping):
            raise ValueError(
                f"{cls.__name__}.from_dict expects a mapping, got {type(data).__name__}"
            )
        known = {f.name: f for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise ValueError(
                f"{cls.__name__}: unknown field(s) {unknown}; "
                f"valid fields: {sorted(known)}"
            )
        kwargs = {
            name: _coerce_field(cls.__name__, known[name], value)
            for name, value in data.items()
        }
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        """A reviewable JSON document equivalent to this configuration."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, source: Union[str, Path]) -> "ConfigBase":
        """Parse a configuration from JSON text or from a JSON file path.

        A :class:`~pathlib.Path`, or a string that does not start with ``{``,
        is treated as a file path; anything else is parsed as JSON text.
        """
        if isinstance(source, Path) or not str(source).lstrip().startswith("{"):
            text = Path(source).read_text(encoding="utf-8")
        else:
            text = str(source)
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"{cls.__name__}: invalid JSON ({error})") from None
        return cls.from_dict(data)


# Field types that appear in the configuration dataclasses, mapped to the
# python types a JSON document may legitimately supply for them.
_FIELD_TYPES: Dict[str, tuple] = {
    "int": (int,),
    "float": (int, float),
    "str": (str,),
    "bool": (bool,),
    "int | None": (int, type(None)),
    "float | None": (int, float, type(None)),
    "str | None": (str, type(None)),
}


def _coerce_field(owner: str, spec: dataclasses.Field, value: Any) -> Any:
    """Validate/convert one ``from_dict`` value, naming the field on error."""
    declared = spec.type if isinstance(spec.type, str) else getattr(spec.type, "__name__", "")
    # Nested configuration dataclasses (RuntimeConfig composes five of them)
    # recurse through the sub-config's own from_dict.
    nested = _NESTED_CONFIGS.get(declared)
    if nested is not None:
        if isinstance(nested, type) and isinstance(value, nested):
            return value
        return nested.from_dict(value)
    allowed = _FIELD_TYPES.get(declared)
    if allowed is None:  # unannotated / exotic field: accept as-is
        return value
    if isinstance(value, bool) and bool not in allowed:
        # bool is an int subclass; reject it explicitly for numeric fields.
        raise ValueError(f"{owner}.{spec.name}: expected {declared}, got {value!r}")
    if not isinstance(value, allowed):
        raise ValueError(f"{owner}.{spec.name}: expected {declared}, got {value!r}")
    if declared.startswith("float") and value is not None:
        return float(value)
    return value


# Populated at the end of the module (and extended by repro.runtime) so
# _coerce_field can resolve nested config fields by their annotation string.
_NESTED_CONFIGS: Dict[str, type] = {}


@dataclass(frozen=True)
class StreamProtocol(ConfigBase):
    """Segmentation protocol of the live stream (Section IV-A)."""

    frame_rate: int = 25
    """Frames per second after preprocessing (paper resizes every video to 25 fps)."""

    segment_frames: int = 64
    """Number of frames per video segment fed to the (simulated) I3D extractor."""

    stride_frames: int = 25
    """Sliding-window stride in frames — 1 second of video."""

    sequence_length: int = 9
    """Length q of the feature sequences fed to CLSTM (covers a 250-frame slot)."""

    def segments_per_hour(self) -> int:
        """Number of segments produced by one hour of stream."""
        frames = 3600 * self.frame_rate
        if frames < self.segment_frames:
            return 0
        return 1 + (frames - self.segment_frames) // self.stride_frames


@dataclass(frozen=True)
class ModelConfig(ConfigBase):
    """Dimensions of the CLSTM model and its feature inputs."""

    action_dim: int = 400
    """Dimensionality d1 of the (simulated) ResNet50-I3D action feature."""

    interaction_dim: int = 32
    """Dimensionality d2 of the audience-interaction feature."""

    action_hidden: int = 128
    """Hidden size h1 of LSTM_I."""

    interaction_hidden: int = 32
    """Hidden size h2 of LSTM_A."""

    backend: str = "auto"
    """Array backend of the fused kernels: 'auto' (resolve the REPRO_BACKEND
    environment variable, default NumPy), 'numpy' or 'cupy'."""

    precision: str = "float64"
    """Compute precision of fused inference: 'float64' (default, bitwise
    reference) or 'float32' (opt-in, tolerance-bounded against float64;
    weights and threshold calibration stay float64 either way)."""

    def __post_init__(self) -> None:
        # Local import: utils stays import-light and nn owns the registries.
        from ..nn.backend import BACKENDS, resolve_precision

        if self.backend != "auto" and self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend '{self.backend}'; options: {('auto',) + BACKENDS}"
            )
        resolve_precision(self.precision)

    def scaled(self, factor: float) -> "ModelConfig":
        """Return a proportionally smaller configuration (used by fast tests)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return ModelConfig(
            action_dim=max(4, int(self.action_dim * factor)),
            interaction_dim=max(2, int(self.interaction_dim * factor)),
            action_hidden=max(4, int(self.action_hidden * factor)),
            interaction_hidden=max(2, int(self.interaction_hidden * factor)),
            backend=self.backend,
            precision=self.precision,
        )


@dataclass(frozen=True)
class TrainingConfig(ConfigBase):
    """CLSTM training hyper-parameters (Section IV-B3 and VI-A)."""

    learning_rate: float = 0.001
    epochs: int = 100
    batch_size: int = 32
    omega: float = 0.8
    """Weight of the action branch in the loss / REIA score (Fig. 9a optimum)."""

    action_loss: str = "js"
    """Reconstruction loss for the action branch: 'js' (default), 'kl', 'l2' or 'mse'."""

    gradient_clip: float = 5.0
    validation_fraction: float = 0.25
    """Paper splits normal segments 75% train / 25% validation."""

    checkpoint_every: int = 50
    """Paper saves the model every 50 epochs and keeps the best validation model."""

    seed: int = 0

    use_fused: bool = True
    """Train through the analytic fused BPTT engine (:mod:`repro.nn.backprop`);
    ``False`` falls back to the per-op autograd tape (the correctness oracle)."""

    tbptt_window: int | None = None
    """Truncated-BPTT window K for streaming updates: the backward sweep only
    covers the last K timesteps (exact full BPTT when sequences fit inside
    the window), making incremental retrains O(window) instead of O(history).
    ``None`` (default) runs full BPTT.  Requires the fused engine
    (``use_fused=True``) — the tape path has no truncation."""

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.epochs < 1:
            raise ValueError(f"epochs must be a positive integer, got {self.epochs}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be a positive integer, got {self.batch_size}")
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be a positive integer, got {self.checkpoint_every}"
            )
        if not 0.0 < self.validation_fraction < 1.0:
            raise ValueError(
                "validation_fraction must lie strictly between 0 and 1, "
                f"got {self.validation_fraction}"
            )
        if not 0.0 <= self.omega <= 1.0:
            raise ValueError(f"omega must be in [0, 1], got {self.omega}")
        if self.gradient_clip < 0:
            raise ValueError(
                f"gradient_clip must be non-negative (0 disables clipping), got {self.gradient_clip}"
            )
        # Local import: the loss registry lives with the loss implementations
        # (repro.nn.losses) and utils stays import-light at module load.
        from ..nn.losses import ACTION_LOSSES

        if self.action_loss not in ACTION_LOSSES:
            raise ValueError(
                f"unknown action_loss '{self.action_loss}'; options: {sorted(ACTION_LOSSES)}"
            )
        if self.tbptt_window is not None:
            if not isinstance(self.tbptt_window, int) or self.tbptt_window < 1:
                raise ValueError(
                    f"tbptt_window must be a positive integer or None, got {self.tbptt_window!r}"
                )
            if not self.use_fused:
                raise ValueError(
                    "tbptt_window requires the fused training engine "
                    "(use_fused=True); the autograd tape has no truncation"
                )


@dataclass(frozen=True)
class DetectionConfig(ConfigBase):
    """Anomaly identification and ADOS filtering parameters (Sections IV-C, V)."""

    omega: float = 0.8
    """Weight of RE_I in the REIA score (Eq. 16)."""

    threshold: float | None = None
    """Anomaly-score threshold tau; ``None`` selects it from training scores."""

    normal_threshold_ratio: float = 0.7
    """Paper sets T_n = 0.7 * T_a for the bound-based filtering."""

    adg_subspaces: int = 20
    """Number n of ADG value-partition subspaces (Table II)."""

    adg_groups: int = 20
    """Number of dimension groups each 400-d feature is summarised into."""

    sparse_groups: int = 10
    """N_sg: number of sparsest groups evaluated exactly (Fig. 12c)."""

    trigger_low: float = 1.6
    """ADOS threshold T1 (Fig. 12a optimum for INF/TWI)."""

    trigger_high: float = 0.5
    """ADOS threshold T2 (Fig. 12b optimum)."""

    top_k: int | None = None
    """Alternative to a threshold: report the top-k scoring segments."""

    def __post_init__(self) -> None:
        if not 0.0 <= self.omega <= 1.0:
            raise ValueError(f"omega must be in [0, 1], got {self.omega}")


@dataclass(frozen=True)
class ServingConfig(ConfigBase):
    """Online serving-runtime parameters (sharded micro-batching scorer)."""

    max_batch_size: int = 64
    """Micro-batch capacity of each shard's scheduler."""

    max_batch_delay_ms: float | None = None
    """Wall-clock flush deadline: a partial batch is scored once its oldest
    queued request has waited this long.  ``None`` keeps the count-based
    flush only (the caller controls latency by flushing explicitly)."""

    num_shards: int = 1
    """Number of scoring shards a shared model registry is served across.
    Ignored when one registry per shard is passed explicitly."""

    max_queue_depth: int | None = None
    """Per-shard bound on queued-but-unscored requests.  When set, a shard's
    micro-batch queue refuses further submissions once this many requests are
    waiting (:class:`~repro.serving.microbatch.QueueFull`), so a stalled
    scorer surfaces as backpressure instead of unbounded memory growth.
    ``None`` keeps the historical unbounded queue."""

    latency_reservoir: int = 512
    """Size of each shard's bounded flush-to-score latency reservoir: the most
    recent ``latency_reservoir`` per-batch latencies (oldest queued arrival →
    scored, in milliseconds) back the p50/p95/p99 percentiles that
    :meth:`~repro.serving.service.ScoringService.load_stats` and the HTTP
    ``/stats`` endpoint report."""

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be positive, got {self.max_batch_size}")
        if self.max_batch_delay_ms is not None and self.max_batch_delay_ms < 0:
            raise ValueError(
                f"max_batch_delay_ms must be non-negative, got {self.max_batch_delay_ms}"
            )
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be positive, got {self.num_shards}")
        if self.max_queue_depth is not None and self.max_queue_depth < self.max_batch_size:
            raise ValueError(
                f"max_queue_depth must be at least max_batch_size "
                f"({self.max_batch_size}) when set, got {self.max_queue_depth}"
            )
        if self.latency_reservoir < 1:
            raise ValueError(
                f"latency_reservoir must be positive, got {self.latency_reservoir}"
            )


@dataclass(frozen=True)
class ExecutorConfig(ConfigBase):
    """Execution strategy of the serving runtime (thread-parallel scoring).

    Selects how :class:`~repro.serving.ShardedScoringService` runs its shard
    work and where incremental retrains execute.  The default is the serial
    in-line path, which is bit-for-bit identical to a runtime with no executor
    at all; ``mode="parallel"`` fans ready shard batches out to a worker
    thread pool (NumPy's BLAS kernels release the GIL, so fused forwards of
    different shards genuinely overlap).
    """

    mode: str = "auto"
    """``"serial"``, ``"parallel"``, ``"process"``, or ``"auto"`` — auto
    resolves from the ``REPRO_EXECUTOR`` environment variable (unset →
    serial), which is how CI runs the whole fast suite once under each
    concurrent executor."""

    workers: int | None = None
    """Worker pool size for ``mode="parallel"`` (threads) and
    ``mode="process"`` (interpreters); ``None`` derives it from the CPU
    count.  ``workers=1`` is bitwise-identical to serial in both modes."""

    background_updates: bool = False
    """Run incremental retrains on a maintenance thread instead of inside the
    scoring path: scoring continues against the pinned snapshot while the
    retrain runs, and the publish lands at a later micro-batch boundary.
    Trades the serial path's deterministic swap timing for latency isolation."""

    start_method: str | None = None
    """``multiprocessing`` start method for ``mode="process"`` workers —
    ``"fork"``, ``"spawn"``, or ``"forkserver"``; ``None`` picks ``fork``
    where available (cheap, inherits the parent's imports) and falls back to
    the platform default elsewhere.  Ignored by the thread and serial modes."""

    def __post_init__(self) -> None:
        if self.mode not in ("auto", "serial", "parallel", "process"):
            raise ValueError(
                f"ExecutorConfig.mode must be 'auto', 'serial', 'parallel' or "
                f"'process', got {self.mode!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError(
                f"ExecutorConfig.workers must be positive when set, got {self.workers}"
            )
        if self.start_method is not None and self.start_method not in (
            "fork",
            "spawn",
            "forkserver",
        ):
            raise ValueError(
                f"ExecutorConfig.start_method must be 'fork', 'spawn' or "
                f"'forkserver' when set, got {self.start_method!r}"
            )


@dataclass(frozen=True)
class UpdateConfig(ConfigBase):
    """Dynamic model-update parameters (Section IV-D)."""

    buffer_size: int = 300
    """Maximal length l_s of the incoming hidden-state buffer (paper optimum)."""

    drift_threshold: float = 0.4
    """Similarity threshold tau_u below which an update is triggered."""

    drift_statistic: str = "cosine"
    """Which similarity statistic the drift check (Eq. 17) computes.

    ``"cosine"`` is the paper's mean pairwise cosine between the historical
    and buffered hidden-state sets.  LSTM hidden states share a large common
    component, so on stationary streams this statistic saturates near 1.0 and
    ``drift_threshold`` has almost no dynamic range.  ``"centered"`` removes
    the historical mean from the buffered states before normalising: it stays
    near 1.0 on stationary streams but collapses towards 0.0 under a
    consistent drift direction, giving the threshold real headroom (see
    :func:`repro.core.update.hidden_set_similarity`)."""

    interaction_threshold: float | None = None
    """Threshold T for labelling incoming segments normal; ``None`` uses the
    running mean of the previous slot's normalised audience interaction."""

    update_epochs: int = 20
    """Epochs used when training the incremental model on buffered segments."""

    merge_weight: float = 0.5
    """Interpolation weight applied to the new model when merging with the old."""

    def __post_init__(self) -> None:
        if self.drift_statistic not in ("cosine", "centered"):
            raise ValueError(
                f"UpdateConfig.drift_statistic must be 'cosine' or 'centered', "
                f"got {self.drift_statistic!r}"
            )


@dataclass(frozen=True)
class ServerConfig(ConfigBase):
    """HTTP ingest tier parameters (:mod:`repro.server`).

    The server is a stdlib-only front-end: JSON wire requests land in an
    admission-controlled ingest queue, a single batcher thread drains the
    queue into :meth:`repro.runtime.Runtime.ingest_many`, and detections
    stream back through a poll/long-poll endpoint.  These knobs bound the
    queue (backpressure instead of unbounded memory), the batch the runtime
    sees per drain, and the long-poll behaviour.
    """

    host: str = "127.0.0.1"
    """Interface the HTTP listener binds."""

    port: int = 0
    """TCP port; ``0`` binds an ephemeral port (tests and examples read the
    bound port back from :attr:`repro.server.RuntimeServer.port`)."""

    max_pending: int = 1024
    """Admission-control bound: wire requests accepted but not yet handed to
    the runtime.  A POST that would push the queue past this bound is refused
    whole with 429 and a ``Retry-After`` hint — admission is all-or-nothing,
    so accepted work is never silently dropped."""

    batch_max: int = 256
    """Most wire requests the batcher thread drains into one
    ``Runtime.ingest_many`` call."""

    retry_after_seconds: float = 0.5
    """Floor of the ``Retry-After`` hint returned with 429 responses; the
    hint grows with the observed drain backlog."""

    poll_interval_ms: float = 20.0
    """How long the batcher thread waits for new work before running the
    runtime's deadline flushes (``Runtime.poll``) anyway."""

    long_poll_max_ms: float = 10_000.0
    """Cap on the ``wait_ms`` a detections long-poll may request."""

    request_max_bytes: int = 16_000_000
    """Largest accepted POST body; bigger requests are refused with 413."""

    def __post_init__(self) -> None:
        if not self.host:
            raise ValueError("ServerConfig.host must be non-empty")
        if not 0 <= self.port <= 65535:
            raise ValueError(f"ServerConfig.port must be in [0, 65535], got {self.port}")
        if self.max_pending < 1:
            raise ValueError(f"ServerConfig.max_pending must be positive, got {self.max_pending}")
        if self.batch_max < 1:
            raise ValueError(f"ServerConfig.batch_max must be positive, got {self.batch_max}")
        if self.retry_after_seconds < 0:
            raise ValueError(
                f"ServerConfig.retry_after_seconds must be non-negative, "
                f"got {self.retry_after_seconds}"
            )
        if self.poll_interval_ms <= 0:
            raise ValueError(
                f"ServerConfig.poll_interval_ms must be positive, got {self.poll_interval_ms}"
            )
        if self.long_poll_max_ms < 0:
            raise ValueError(
                f"ServerConfig.long_poll_max_ms must be non-negative, "
                f"got {self.long_poll_max_ms}"
            )
        if self.request_max_bytes < 1:
            raise ValueError(
                f"ServerConfig.request_max_bytes must be positive, got {self.request_max_bytes}"
            )


@dataclass(frozen=True)
class DurabilityConfig(ConfigBase):
    """Durability plane parameters (:mod:`repro.durability`).

    Everything hangs off ``directory``: when set, the runtime write-ahead
    logs every ingest call before scoring it, auto-checkpoints under the
    configured policy, chains delta checkpoints with periodic compaction,
    and :meth:`repro.runtime.Runtime.recover` restores the latest checkpoint
    plus the WAL tail to the exact pre-crash state.  When ``None`` (the
    default) the runtime behaves exactly as before: manual full checkpoints
    only, no logging.
    """

    directory: str | None = None
    """Root of the durable store (``checkpoints/`` and ``wal/`` live under
    it).  ``None`` disables the whole durability plane."""

    wal: bool = True
    """Write-ahead log every ingest call (requires ``directory``).  ``False``
    keeps policy-driven checkpoints but accepts losing the segments ingested
    since the last one on a crash."""

    wal_fsync_every: int = 1
    """fsync the WAL after every Nth append call.  ``1`` (default) makes
    every ingest call durable before it is scored; larger values batch the
    fsyncs (bounded tail loss on power failure); ``0`` leaves flushing to
    the OS."""

    checkpoint_every_records: int | None = None
    """Auto-checkpoint after this many ingested submissions (``None`` = no
    record-count rule)."""

    checkpoint_every_updates: int | None = None
    """Auto-checkpoint after this many model publishes (``None`` = no
    publish-count rule)."""

    checkpoint_every_seconds: float | None = None
    """Auto-checkpoint once this much time has passed since the last one,
    measured on the runtime's injectable clock and evaluated at
    ingest/poll boundaries (``None`` = no time rule)."""

    delta: bool = True
    """Write delta checkpoints (only model versions absent from the parent
    manifest) between compactions; ``False`` makes every checkpoint full."""

    full_every: int = 8
    """Compaction period: force a full checkpoint once the delta chain would
    reach this depth (``1`` = every checkpoint is full)."""

    def __post_init__(self) -> None:
        if self.wal_fsync_every < 0:
            raise ValueError(
                f"DurabilityConfig.wal_fsync_every must be >= 0, got {self.wal_fsync_every}"
            )
        if self.checkpoint_every_records is not None and self.checkpoint_every_records < 1:
            raise ValueError(
                f"DurabilityConfig.checkpoint_every_records must be positive when set, "
                f"got {self.checkpoint_every_records}"
            )
        if self.checkpoint_every_updates is not None and self.checkpoint_every_updates < 1:
            raise ValueError(
                f"DurabilityConfig.checkpoint_every_updates must be positive when set, "
                f"got {self.checkpoint_every_updates}"
            )
        if self.checkpoint_every_seconds is not None and self.checkpoint_every_seconds <= 0:
            raise ValueError(
                f"DurabilityConfig.checkpoint_every_seconds must be positive when set, "
                f"got {self.checkpoint_every_seconds}"
            )
        if self.full_every < 1:
            raise ValueError(
                f"DurabilityConfig.full_every must be positive, got {self.full_every}"
            )
        if self.directory is None and (
            self.checkpoint_every_records is not None
            or self.checkpoint_every_updates is not None
            or self.checkpoint_every_seconds is not None
        ):
            raise ValueError(
                "DurabilityConfig checkpoint policy rules require a directory: "
                "set DurabilityConfig.directory or drop the checkpoint_every_* knobs"
            )


@dataclass(frozen=True)
class ShardingConfig(ConfigBase):
    """Load-aware shard routing and topology policy (:mod:`repro.serving.rebalance`).

    By default streams stay pinned to the CRC-32 shard they hash to for their
    whole life.  Enabling ``rebalance`` puts a
    :class:`~repro.serving.rebalance.Rebalancer` between the hash and the
    route table: *new* streams are diverted away from hot shards, and shards
    may be deterministically split under sustained backlog and merged back
    once the split shard drains.  Existing streams never move mid-flight —
    per-stream ordering is preserved; only the route a stream gets *at first
    sight* (and the explicit whole-session handoff of a merge) ever changes.
    """

    rebalance: bool = False
    """Master switch.  ``False`` keeps pure CRC-32 routing and a fixed shard
    topology — bitwise-identical to every pre-rebalancer release."""

    hot_queue_factor: float = 2.0
    """A shard counts as hot for new-stream diversion when its queue depth is
    at least ``hot_queue_factor`` times the mean depth across active shards
    (and also at least ``min_hot_depth``)."""

    min_hot_depth: int = 8
    """Absolute queue-depth floor below which a shard is never considered hot,
    so tiny workloads don't jitter routes over one-request imbalances."""

    split_queue_depth: int | None = None
    """Queue depth at which the deepest shard is split (a fresh shard is added
    and new streams start routing to it).  ``None`` disables splitting."""

    max_shards: int = 8
    """Upper bound on the shard count splits may grow the service to."""

    merge_idle_rounds: int | None = None
    """Merge a split-created shard back (handing its sessions and routes to
    the least-loaded survivor) after its queue has been empty for this many
    consecutive rebalance rounds.  ``None`` disables merging."""

    def __post_init__(self) -> None:
        if self.hot_queue_factor < 1.0:
            raise ValueError(
                f"ShardingConfig.hot_queue_factor must be >= 1, got {self.hot_queue_factor}"
            )
        if self.min_hot_depth < 1:
            raise ValueError(
                f"ShardingConfig.min_hot_depth must be positive, got {self.min_hot_depth}"
            )
        if self.split_queue_depth is not None and self.split_queue_depth < 1:
            raise ValueError(
                f"ShardingConfig.split_queue_depth must be positive when set, "
                f"got {self.split_queue_depth}"
            )
        if self.max_shards < 1:
            raise ValueError(
                f"ShardingConfig.max_shards must be positive, got {self.max_shards}"
            )
        if self.merge_idle_rounds is not None and self.merge_idle_rounds < 1:
            raise ValueError(
                f"ShardingConfig.merge_idle_rounds must be positive when set, "
                f"got {self.merge_idle_rounds}"
            )


__all__ += [
    "ServingConfig",
    "ExecutorConfig",
    "DurabilityConfig",
    "ShardingConfig",
    "UpdateConfig",
    "ServerConfig",
]

_NESTED_CONFIGS.update(
    {
        "StreamProtocol": StreamProtocol,
        "ModelConfig": ModelConfig,
        "TrainingConfig": TrainingConfig,
        "DetectionConfig": DetectionConfig,
        "ServingConfig": ServingConfig,
        "ExecutorConfig": ExecutorConfig,
        "DurabilityConfig": DurabilityConfig,
        "ShardingConfig": ShardingConfig,
        "UpdateConfig": UpdateConfig,
        "ServerConfig": ServerConfig,
    }
)
