"""Central configuration objects for the AOVLIS reproduction.

The paper fixes a number of protocol constants (64-frame segments with a
25-frame stride at 25 fps, sequence length q = 9, 400-dimensional action
features, learning rate 0.001, etc.).  Collecting them in frozen dataclasses
keeps the library, the examples and the benchmark harness consistent and makes
the choices visible to downstream users.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Any, Dict

__all__ = ["StreamProtocol", "ModelConfig", "TrainingConfig", "DetectionConfig"]


@dataclass(frozen=True)
class StreamProtocol:
    """Segmentation protocol of the live stream (Section IV-A)."""

    frame_rate: int = 25
    """Frames per second after preprocessing (paper resizes every video to 25 fps)."""

    segment_frames: int = 64
    """Number of frames per video segment fed to the (simulated) I3D extractor."""

    stride_frames: int = 25
    """Sliding-window stride in frames — 1 second of video."""

    sequence_length: int = 9
    """Length q of the feature sequences fed to CLSTM (covers a 250-frame slot)."""

    def segments_per_hour(self) -> int:
        """Number of segments produced by one hour of stream."""
        frames = 3600 * self.frame_rate
        if frames < self.segment_frames:
            return 0
        return 1 + (frames - self.segment_frames) // self.stride_frames

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class ModelConfig:
    """Dimensions of the CLSTM model and its feature inputs."""

    action_dim: int = 400
    """Dimensionality d1 of the (simulated) ResNet50-I3D action feature."""

    interaction_dim: int = 32
    """Dimensionality d2 of the audience-interaction feature."""

    action_hidden: int = 128
    """Hidden size h1 of LSTM_I."""

    interaction_hidden: int = 32
    """Hidden size h2 of LSTM_A."""

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def scaled(self, factor: float) -> "ModelConfig":
        """Return a proportionally smaller configuration (used by fast tests)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return ModelConfig(
            action_dim=max(4, int(self.action_dim * factor)),
            interaction_dim=max(2, int(self.interaction_dim * factor)),
            action_hidden=max(4, int(self.action_hidden * factor)),
            interaction_hidden=max(2, int(self.interaction_hidden * factor)),
        )


@dataclass(frozen=True)
class TrainingConfig:
    """CLSTM training hyper-parameters (Section IV-B3 and VI-A)."""

    learning_rate: float = 0.001
    epochs: int = 100
    batch_size: int = 32
    omega: float = 0.8
    """Weight of the action branch in the loss / REIA score (Fig. 9a optimum)."""

    action_loss: str = "js"
    """Reconstruction loss for the action branch: 'js' (default), 'kl', 'l2' or 'mse'."""

    gradient_clip: float = 5.0
    validation_fraction: float = 0.25
    """Paper splits normal segments 75% train / 25% validation."""

    checkpoint_every: int = 50
    """Paper saves the model every 50 epochs and keeps the best validation model."""

    seed: int = 0

    use_fused: bool = True
    """Train through the analytic fused BPTT engine (:mod:`repro.nn.backprop`);
    ``False`` falls back to the per-op autograd tape (the correctness oracle)."""

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.epochs < 1:
            raise ValueError(f"epochs must be a positive integer, got {self.epochs}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be a positive integer, got {self.batch_size}")
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be a positive integer, got {self.checkpoint_every}"
            )
        if not 0.0 < self.validation_fraction < 1.0:
            raise ValueError(
                "validation_fraction must lie strictly between 0 and 1, "
                f"got {self.validation_fraction}"
            )
        if not 0.0 <= self.omega <= 1.0:
            raise ValueError(f"omega must be in [0, 1], got {self.omega}")
        if self.gradient_clip < 0:
            raise ValueError(
                f"gradient_clip must be non-negative (0 disables clipping), got {self.gradient_clip}"
            )
        # Local import: the loss registry lives with the loss implementations
        # (repro.nn.losses) and utils stays import-light at module load.
        from ..nn.losses import ACTION_LOSSES

        if self.action_loss not in ACTION_LOSSES:
            raise ValueError(
                f"unknown action_loss '{self.action_loss}'; options: {sorted(ACTION_LOSSES)}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class DetectionConfig:
    """Anomaly identification and ADOS filtering parameters (Sections IV-C, V)."""

    omega: float = 0.8
    """Weight of RE_I in the REIA score (Eq. 16)."""

    threshold: float | None = None
    """Anomaly-score threshold tau; ``None`` selects it from training scores."""

    normal_threshold_ratio: float = 0.7
    """Paper sets T_n = 0.7 * T_a for the bound-based filtering."""

    adg_subspaces: int = 20
    """Number n of ADG value-partition subspaces (Table II)."""

    adg_groups: int = 20
    """Number of dimension groups each 400-d feature is summarised into."""

    sparse_groups: int = 10
    """N_sg: number of sparsest groups evaluated exactly (Fig. 12c)."""

    trigger_low: float = 1.6
    """ADOS threshold T1 (Fig. 12a optimum for INF/TWI)."""

    trigger_high: float = 0.5
    """ADOS threshold T2 (Fig. 12b optimum)."""

    top_k: int | None = None
    """Alternative to a threshold: report the top-k scoring segments."""

    def __post_init__(self) -> None:
        if not 0.0 <= self.omega <= 1.0:
            raise ValueError(f"omega must be in [0, 1], got {self.omega}")

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class ServingConfig:
    """Online serving-runtime parameters (sharded micro-batching scorer)."""

    max_batch_size: int = 64
    """Micro-batch capacity of each shard's scheduler."""

    max_batch_delay_ms: float | None = None
    """Wall-clock flush deadline: a partial batch is scored once its oldest
    queued request has waited this long.  ``None`` keeps the count-based
    flush only (the caller controls latency by flushing explicitly)."""

    num_shards: int = 1
    """Number of scoring shards a shared model registry is served across.
    Ignored when one registry per shard is passed explicitly."""

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be positive, got {self.max_batch_size}")
        if self.max_batch_delay_ms is not None and self.max_batch_delay_ms < 0:
            raise ValueError(
                f"max_batch_delay_ms must be non-negative, got {self.max_batch_delay_ms}"
            )
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be positive, got {self.num_shards}")

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class UpdateConfig:
    """Dynamic model-update parameters (Section IV-D)."""

    buffer_size: int = 300
    """Maximal length l_s of the incoming hidden-state buffer (paper optimum)."""

    drift_threshold: float = 0.4
    """Similarity threshold tau_u below which an update is triggered."""

    interaction_threshold: float | None = None
    """Threshold T for labelling incoming segments normal; ``None`` uses the
    running mean of the previous slot's normalised audience interaction."""

    update_epochs: int = 20
    """Epochs used when training the incremental model on buffered segments."""

    merge_weight: float = 0.5
    """Interpolation weight applied to the new model when merging with the old."""

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


__all__ += ["ServingConfig", "UpdateConfig"]
