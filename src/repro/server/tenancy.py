"""Per-tenant namespaces: tenant-prefixed stream ids → per-tenant runtimes.

A multi-tenant deployment serves several independent
:class:`~repro.runtime.Runtime` instances — each with its own registry,
update planes and shards (PR 3's multi-model serving, one level up) — behind
one HTTP listener.  The router owns the name → runtime map and resolves each
wire stream id by its ``tenant/`` prefix.

The *full* wire stream id (prefix included) is what reaches the tenant's
runtime: stripping the prefix would re-route streams (shard assignment
hashes the id) and break the bitwise-parity contract between HTTP ingest and
direct library calls.  Isolation is by construction — a resolved submission
only ever touches its own tenant's runtime, so one tenant's drift-triggered
publishes can never move another tenant's ``model_version``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from .wire import WireError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime import Runtime

__all__ = ["TenantRouter"]


class TenantRouter:
    """Resolve wire stream ids to tenant runtimes by prefix.

    Parameters
    ----------
    tenants:
        ``name -> Runtime`` map.  Names must not contain the separator.
    default:
        Optional tenant name that un-prefixed stream ids (and ids whose
        prefix is not a registered tenant) fall back to.  Without a default,
        such ids are refused with a 404 — in a strict multi-tenant
        deployment an unknown prefix is a client addressing error, not a new
        namespace to silently create.
    separator:
        The prefix delimiter in wire stream ids (``tenant/stream``).
    """

    def __init__(
        self,
        tenants: Mapping[str, "Runtime"],
        *,
        default: Optional[str] = None,
        separator: str = "/",
    ) -> None:
        if not separator:
            raise ValueError("separator must be non-empty")
        self.separator = separator
        self._tenants: Dict[str, "Runtime"] = {}
        for name, runtime in tenants.items():
            self.register(name, runtime)
        if not self._tenants:
            raise ValueError("tenants must not be empty")
        if default is not None and default not in self._tenants:
            raise ValueError(f"default tenant {default!r} is not registered")
        self.default = default

    def register(self, name: str, runtime: "Runtime") -> None:
        """Add one tenant (names are unique; the separator is reserved)."""
        if not name or self.separator in name:
            raise ValueError(
                f"tenant name must be non-empty and must not contain "
                f"{self.separator!r}, got {name!r}"
            )
        if name in self._tenants:
            raise ValueError(f"tenant {name!r} is already registered")
        self._tenants[name] = runtime

    def tenant_names(self) -> List[str]:
        return list(self._tenants)

    def items(self) -> List[Tuple[str, "Runtime"]]:
        """``(name, runtime)`` pairs in registration order."""
        return list(self._tenants.items())

    def resolve(self, stream_id: str) -> "Runtime":
        """The runtime owning ``stream_id``; :class:`WireError` 404 if none."""
        prefix, found, _ = stream_id.partition(self.separator)
        if found and prefix in self._tenants:
            return self._tenants[prefix]
        if self.default is not None:
            return self._tenants[self.default]
        raise WireError(
            404,
            f"stream {stream_id!r} does not resolve to a registered tenant",
        )
