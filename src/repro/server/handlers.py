"""HTTP request handler of the ingest tier (stdlib ``http.server``).

The handler is deliberately thin: it parses the URL, reads the (bounded)
body and delegates to the owning :class:`~repro.server.app.RuntimeServer` —
all admission, tenancy and runtime logic lives there, where it is testable
without a socket.  Every response is JSON with an explicit
``Content-Length`` (the handler speaks HTTP/1.1 with keep-alive).

Routes
------
==============================  =====================================________
``POST /v1/ingest``             admit a batch of segments (202 / 400 / 413 / 429)
``GET  /v1/detections``         poll or long-poll one stream's detections
``POST /v1/drain``              flush every queue; returns per-tenant counts
``GET  /healthz``               liveness + per-tenant model versions
``GET  /stats``                 admission + per-tenant serving counters
``GET  /metrics``               Prometheus text exposition of the same counters
==============================  =====================================________
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler
from typing import Iterable, Tuple
from urllib.parse import parse_qs, urlparse

from ..durability.metrics import CONTENT_TYPE as _METRICS_CONTENT_TYPE
from .wire import WireError

__all__ = ["RuntimeRequestHandler"]


class RuntimeRequestHandler(BaseHTTPRequestHandler):
    """Dispatch requests to ``self.server.app`` (a ``RuntimeServer``)."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    # Fully buffer the response writer.  The stdlib default (``wbufsize = 0``)
    # pushes every ``send_header`` line as its own TCP segment, which on a
    # keep-alive connection trips Nagle against the peer's delayed ACK —
    # ~40 ms per exchange, a ~50x throughput cliff on loopback.  Buffered,
    # the whole status + headers + JSON body leaves in one segment at flush.
    wbufsize = -1

    @property
    def app(self):
        return self.server.app

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib name
        """Silence per-request stderr logging (counters live in /stats)."""

    # ------------------------------------------------------------------ #
    def _send_json(
        self, status: int, payload: object, headers: Iterable[Tuple[str, str]] = ()
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise WireError(400, "Content-Length must be an integer") from None
        if length <= 0:
            raise WireError(400, "request requires a non-empty body")
        if length > self.app.config.request_max_bytes:
            raise WireError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{self.app.config.request_max_bytes}-byte limit",
            )
        return self.rfile.read(length)

    def _query(self) -> dict:
        return parse_qs(urlparse(self.path).query)

    # ------------------------------------------------------------------ #
    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        route = urlparse(self.path).path
        try:
            if route == "/v1/ingest":
                status, payload, headers = self.app.handle_ingest(self._read_body())
                self._send_json(status, payload, headers)
            elif route == "/v1/drain":
                self._send_json(200, self.app.handle_drain())
            else:
                self._send_json(404, {"error": f"no such route: {route}"})
        except WireError as error:
            self._send_json(error.status, {"error": error.message})

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        route = urlparse(self.path).path
        try:
            if route == "/healthz":
                self._send_json(200, self.app.handle_health())
            elif route == "/stats":
                self._send_json(200, self.app.handle_stats())
            elif route == "/metrics":
                self._send_text(200, self.app.handle_metrics(), _METRICS_CONTENT_TYPE)
            elif route == "/v1/detections":
                self._send_json(200, self.app.handle_detections(self._query()))
            else:
                self._send_json(404, {"error": f"no such route: {route}"})
        except WireError as error:
            self._send_json(error.status, {"error": error.message})
