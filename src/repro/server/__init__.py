"""HTTP ingest tier over the runtime: the network front of the system.

Everything the library runtime can do in-process — micro-batched scoring,
drift-triggered updates, hot swaps, checkpoints — becomes reachable over a
wire here, using only the standard library (``http.server``; no new
dependencies):

* :class:`RuntimeServer` — the server: a ``ThreadingHTTPServer`` for the
  socket, an :class:`AdmissionController` bounding what the process will
  queue (overload answers 429 + ``Retry-After`` instead of growing without
  limit), and one batcher thread turning admitted segments into
  :meth:`Runtime.ingest_many` calls — which keeps HTTP ingest
  bitwise-identical to driving the library directly.
* :class:`TenantRouter` — per-tenant namespaces: ``tenant/stream`` wire ids
  resolve to per-tenant runtimes with fully isolated registries and update
  planes.
* :mod:`~repro.server.wire` — the strict JSON protocol; non-finite features
  are a 400 at the door, never a NaN inside the drift monitor.

Entry points: ``Runtime.serve()`` for single-tenant, or construct
:class:`RuntimeServer` around a :class:`TenantRouter` (see
``examples/http_serving.py``).
"""

from .admission import AdmissionController
from .app import RuntimeServer
from .tenancy import TenantRouter
from .wire import WireError, detection_to_json, parse_ingest

__all__ = [
    "AdmissionController",
    "RuntimeServer",
    "TenantRouter",
    "WireError",
    "detection_to_json",
    "parse_ingest",
]
