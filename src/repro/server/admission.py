"""Admission control: the bounded queue between the socket and the runtime.

HTTP handler threads *offer* validated work; a single batcher thread *takes*
it in micro-batch-sized chunks.  The queue is bounded — when accepting a
request would push the depth past ``max_pending``, the whole request is
refused (HTTP 429 with a ``Retry-After`` hint) and **none** of its segments
enqueue.  All-or-nothing admission is what makes the 429 contract honest:
work is either fully accepted (and will be scored, barring process death) or
fully refused (and the client retries the identical request); a partially
admitted request would be both.

This is deliberately a *second* bound in front of
``ServingConfig.max_queue_depth``: the service-level bound protects the
library runtime from any misbehaving in-process producer, while this one
protects the process from the network — and refuses load *before* feature
arrays are stacked into shard queues.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded FIFO hand-off from HTTP handler threads to the batcher.

    Parameters
    ----------
    max_pending:
        Hard bound on queued-but-not-taken items.
    retry_after_seconds:
        The ``Retry-After`` hint attached to refusals.  A constant from
        configuration (not a measured drain rate): deterministic, and honest
        enough — the client's contract is "retry later", not a latency SLO.
    """

    def __init__(self, max_pending: int, retry_after_seconds: float) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be positive, got {max_pending}")
        if retry_after_seconds <= 0:
            raise ValueError(
                f"retry_after_seconds must be positive, got {retry_after_seconds}"
            )
        self.max_pending = int(max_pending)
        self.retry_after_seconds = float(retry_after_seconds)
        self._state = threading.Condition()
        self._queue: Deque[object] = deque()
        self._closed = False
        self.accepted = 0
        self.rejected = 0
        self.high_watermark = 0

    def depth(self) -> int:
        with self._state:
            return len(self._queue)

    def offer(self, items: List[object]) -> Tuple[bool, int]:
        """Admit ``items`` as a unit; returns ``(accepted, queue_depth)``.

        Refuses the *whole* batch when it does not fit below ``max_pending``
        — nothing is partially enqueued — and when the controller is closed
        (a draining server refuses new work the same way it refuses
        overload: the client retries against the replacement).
        """
        if not items:
            return True, self.depth()
        with self._state:
            if self._closed or len(self._queue) + len(items) > self.max_pending:
                self.rejected += len(items)
                return False, len(self._queue)
            self._queue.extend(items)
            self.accepted += len(items)
            self.high_watermark = max(self.high_watermark, len(self._queue))
            self._state.notify_all()
            return True, len(self._queue)

    def wait(self, timeout: float) -> bool:
        """Block up to ``timeout`` seconds for queued work (or closure)."""
        with self._state:
            return self._state.wait_for(
                lambda: bool(self._queue) or self._closed, timeout=timeout
            )

    def take(self, max_items: int) -> List[object]:
        """Pop up to ``max_items`` queued items without blocking (FIFO)."""
        with self._state:
            batch: List[object] = []
            while self._queue and len(batch) < max_items:
                batch.append(self._queue.popleft())
            return batch

    def close(self) -> None:
        """Refuse all future offers and wake any waiting batcher (idempotent).

        Already-admitted items stay queued — the shutdown path takes and
        ingests them, honouring the never-drop-accepted-work contract.
        """
        with self._state:
            self._closed = True
            self._state.notify_all()

    def stats(self) -> Dict[str, object]:
        """One consistent counter sample (for ``/stats``)."""
        with self._state:
            return {
                "queue_depth": len(self._queue),
                "max_pending": self.max_pending,
                "accepted": self.accepted,
                "rejected": self.rejected,
                "high_watermark": self.high_watermark,
                "retry_after_seconds": self.retry_after_seconds,
            }
