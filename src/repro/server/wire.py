"""JSON wire protocol of the HTTP ingest tier.

One request shape in, one detection shape out:

* **Ingest** (``POST /v1/ingest``)::

      {"segments": [{"stream": "tenant-a/cam-1",
                     "action": [...],          # finite numbers
                     "interaction": [...],     # finite numbers
                     "level": 0.41},           # optional; null/absent = unknown
                    ...]}

* **Detection** (``GET /v1/detections``) — each element is
  :func:`detection_to_json` of one
  :class:`~repro.serving.service.StreamDetection`.

Validation is strict and happens *before* admission: a request that would
poison the runtime (non-finite features, a non-finite interaction level —
Python's ``json`` accepts ``NaN``/``Infinity`` literals, so the wire *can*
deliver them — missing fields, wrong types) is rejected with a 400 carrying
the offending segment's position, and nothing of the request is enqueued.
Floats round-trip exactly: ``json`` serialises via ``repr``, which is
lossless for IEEE-754 doubles, so detections read over the wire compare
bitwise-equal to detections read from the library API.
"""

from __future__ import annotations

import json
from typing import Any, List, Optional, Tuple

import numpy as np

from ..serving.service import StreamDetection

__all__ = ["WireError", "IngestItem", "parse_ingest", "detection_to_json"]

IngestItem = Tuple[str, np.ndarray, np.ndarray, Optional[float]]
"""One parsed segment: ``(stream_id, action, interaction, level)`` — the
tuple shape :meth:`Runtime.ingest_many` consumes."""


class WireError(Exception):
    """A client-attributable protocol violation, mapped to an HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = message


def _finite_vector(value: Any, field: str, position: int) -> np.ndarray:
    if not isinstance(value, list) or not value:
        raise WireError(
            400, f"segments[{position}].{field} must be a non-empty number list"
        )
    try:
        vector = np.asarray(value, dtype=np.float64)
    except (TypeError, ValueError):
        raise WireError(
            400, f"segments[{position}].{field} must contain only numbers"
        ) from None
    if vector.ndim != 1:
        raise WireError(400, f"segments[{position}].{field} must be a flat list")
    if not np.isfinite(vector).all():
        raise WireError(
            400, f"segments[{position}].{field} contains non-finite values"
        )
    return vector


def parse_ingest(body: bytes, *, max_items: Optional[int] = None) -> List[IngestItem]:
    """Parse and validate one ingest request body.

    Returns the submissions in request order.  Raises :class:`WireError`
    (status 400) on any malformed or non-finite input; the whole request is
    rejected as a unit — ingest is all-or-nothing at the protocol layer too,
    matching the admission controller's contract.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(400, f"request body is not valid JSON: {error}") from None
    if not isinstance(payload, dict) or not isinstance(payload.get("segments"), list):
        raise WireError(400, "request body must be {\"segments\": [...]}")
    segments = payload["segments"]
    if not segments:
        raise WireError(400, "segments must not be empty")
    if max_items is not None and len(segments) > max_items:
        raise WireError(
            413, f"request carries {len(segments)} segments; limit is {max_items}"
        )
    items: List[IngestItem] = []
    for position, entry in enumerate(segments):
        if not isinstance(entry, dict):
            raise WireError(400, f"segments[{position}] must be an object")
        stream_id = entry.get("stream")
        if not isinstance(stream_id, str) or not stream_id:
            raise WireError(
                400, f"segments[{position}].stream must be a non-empty string"
            )
        action = _finite_vector(entry.get("action"), "action", position)
        interaction = _finite_vector(entry.get("interaction"), "interaction", position)
        level = entry.get("level")
        if level is not None:
            if isinstance(level, bool) or not isinstance(level, (int, float)):
                raise WireError(
                    400, f"segments[{position}].level must be a number or null"
                )
            level = float(level)
            if not np.isfinite(level):
                raise WireError(
                    400,
                    f"segments[{position}].level must be finite "
                    "(use null to mark the level unknown)",
                )
        items.append((stream_id, action, interaction, level))
    return items


def detection_to_json(detection: StreamDetection) -> dict:
    """One :class:`StreamDetection` as a JSON-serialisable dict (lossless)."""
    return {
        "stream": detection.stream_id,
        "segment_index": detection.segment_index,
        "score": detection.score,
        "action_error": detection.action_error,
        "interaction_error": detection.interaction_error,
        "is_anomaly": detection.is_anomaly,
        "threshold": detection.threshold,
        "model_version": detection.model_version,
        "precision": detection.precision,
    }
