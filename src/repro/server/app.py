"""The HTTP ingest server: socket, admission queue, batcher thread.

Architecture (all stdlib, no new dependencies)::

    handler threads (ThreadingHTTPServer)
        POST /v1/ingest  ── parse ── resolve tenant ── AdmissionController.offer
                                                            │  bounded FIFO
    batcher thread (one)                                    ▼
        take(batch_max) ── group by tenant ── Runtime.ingest_many ── notify
                                                            │
    handler threads                                         ▼
        GET /v1/detections ── long-poll on the notify ── per-stream sessions

One batcher thread is the design, not a limitation: `Runtime.ingest_many`
is already the concurrent fan-out point (shard batches score on the
executor's worker pool), so a second ingest thread would only interleave
submissions nondeterministically *before* the deterministic part.  With a
single batcher, one HTTP request's segments enter the runtime as one
contiguous `ingest_many` call per tenant, in request order — which is what
makes HTTP ingest bitwise-identical to calling the library directly.
"""

from __future__ import annotations

import math
import threading
import time
from http.server import ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple, Union

from ..durability.metrics import render_server_metrics
from ..utils.config import ServerConfig
from .admission import AdmissionController
from .handlers import RuntimeRequestHandler
from .tenancy import TenantRouter
from .wire import WireError, detection_to_json, parse_ingest

__all__ = ["RuntimeServer"]


class _HTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying a reference to its ``RuntimeServer``."""

    daemon_threads = True
    allow_reuse_address = True
    # TCP_NODELAY on accepted sockets: responses are single buffered writes
    # (see RuntimeRequestHandler.wbufsize), so Nagle has nothing to coalesce
    # and only adds delayed-ACK latency to the request/response ping-pong.
    disable_nagle_algorithm = True
    app: "RuntimeServer"


class RuntimeServer:
    """HTTP front-end over one runtime (or a multi-tenant router of them).

    Parameters
    ----------
    target:
        A fitted :class:`~repro.runtime.Runtime` (single-tenant: every wire
        stream id passes through verbatim) or a :class:`TenantRouter`
        (multi-tenant: ``tenant/stream`` prefixes select the runtime).
    config:
        Bind address and queue/batch/long-poll knobs; defaults to the
        runtime's own ``config.server`` in single-tenant mode, else a
        default :class:`ServerConfig`.

    Lifecycle: :meth:`start` binds the socket and starts the listener and
    batcher threads; :meth:`drain` flushes every queue end to end;
    :meth:`close` stops accepting, ingests everything already admitted
    (accepted work is never dropped) and stops the threads.  Also a context
    manager.
    """

    def __init__(
        self,
        target: Union["TenantRouter", object],
        config: Optional[ServerConfig] = None,
    ) -> None:
        if isinstance(target, TenantRouter):
            self.router = target
        else:
            self.router = TenantRouter({"default": target}, default="default")
        if config is None:
            if not isinstance(target, TenantRouter):
                config = target.config.server
            else:
                config = ServerConfig()
        self.config = config
        self.admission = AdmissionController(
            config.max_pending, config.retry_after_seconds
        )
        # Serialises every path that feeds the runtimes (batcher tick,
        # drain, shutdown flush) — one ingest stream, deterministic order.
        self._ingest_lock = threading.Lock()
        self._detections = threading.Condition()
        self._stop = threading.Event()
        self._httpd: Optional[_HTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._batch_thread: Optional[threading.Thread] = None
        self._batcher_error: Optional[BaseException] = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "RuntimeServer":
        """Bind the socket, start the listener and batcher threads."""
        if self._closed:
            raise RuntimeError("server is closed")
        if self._httpd is not None:
            raise RuntimeError("server is already started")
        for name, runtime in self.router.items():
            if not runtime.fitted:
                raise RuntimeError(f"tenant {name!r} runtime is not fitted")
        self._httpd = _HTTPServer(
            (self.config.host, self.config.port), RuntimeRequestHandler
        )
        self._httpd.app = self
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-http",
            daemon=True,
        )
        self._http_thread.start()
        self._batch_thread = threading.Thread(
            target=self._batch_loop, name="repro-ingest-batcher", daemon=True
        )
        self._batch_thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` ephemerals)."""
        if self._httpd is None:
            raise RuntimeError("server is not started")
        return self._httpd.server_address[0], self._httpd.server_address[1]

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def drain(self) -> Dict[str, int]:
        """Flush end to end: admission queue, then every tenant runtime.

        Returns the number of detections the final runtime drains produced,
        per tenant.  After it returns every admitted segment has been scored
        and every queued background retrain has landed.
        """
        self._raise_batcher_error()
        while True:
            with self._ingest_lock:
                items = self.admission.take(self.config.batch_max)
                if not items:
                    break
                self._ingest_locked(items)
        with self._ingest_lock:
            counts = {
                name: len(runtime.drain()) for name, runtime in self.router.items()
            }
        self._notify_detections()
        return counts

    def close(self) -> None:
        """Stop accepting, flush admitted work into the runtimes, stop threads.

        Idempotent.  Does *not* drain the runtimes' own queues (their owner
        decides when to :meth:`~repro.runtime.Runtime.drain` or checkpoint);
        it only guarantees no admitted segment dies in the admission queue.
        """
        if self._closed:
            return
        self._closed = True
        self.admission.close()
        if self._httpd is not None:
            self._httpd.shutdown()
            if self._http_thread is not None:
                self._http_thread.join()
            self._httpd.server_close()
        self._stop.set()
        if self._batch_thread is not None:
            self._batch_thread.join()
        while True:
            with self._ingest_lock:
                items = self.admission.take(self.config.batch_max)
                if not items:
                    break
                self._ingest_locked(items)
        self._notify_detections()
        self._raise_batcher_error()

    def __enter__(self) -> "RuntimeServer":
        if self._httpd is None:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # The batcher thread
    # ------------------------------------------------------------------ #
    def _batch_loop(self) -> None:
        interval = self.config.poll_interval_ms / 1000.0
        while not self._stop.is_set():
            self.admission.wait(interval)
            try:
                worked = self._ingest_once()
                if not worked:
                    self._poll_runtimes()
            except BaseException as error:  # surfaced by drain()/close()
                self._batcher_error = error
                return

    def _ingest_once(self) -> bool:
        with self._ingest_lock:
            items = self.admission.take(self.config.batch_max)
            if not items:
                return False
            self._ingest_locked(items)
        self._notify_detections()
        return True

    def _ingest_locked(self, items: List[tuple]) -> None:
        """Feed admitted ``(runtime, submission)`` items, one call per tenant.

        Caller holds ``_ingest_lock``.  Grouping preserves arrival order
        within each tenant, so the runtime sees exactly the segment sequence
        the clients sent.
        """
        groups: Dict[int, Tuple[object, List[tuple]]] = {}
        for runtime, submission in items:
            key = id(runtime)
            if key not in groups:
                groups[key] = (runtime, [])
            groups[key][1].append(submission)
        for runtime, submissions in groups.values():
            runtime.ingest_many(submissions)

    def _poll_runtimes(self) -> None:
        produced = False
        with self._ingest_lock:
            for _, runtime in self.router.items():
                if runtime.poll():
                    produced = True
        if produced:
            self._notify_detections()

    def _notify_detections(self) -> None:
        with self._detections:
            self._detections.notify_all()

    def _raise_batcher_error(self) -> None:
        error, self._batcher_error = self._batcher_error, None
        if error is not None:
            raise RuntimeError("ingest batcher thread failed") from error

    # ------------------------------------------------------------------ #
    # Request handling (called from handler threads)
    # ------------------------------------------------------------------ #
    def handle_ingest(self, body: bytes) -> Tuple[int, dict, List[Tuple[str, str]]]:
        """Validate, resolve and admit one ingest request (all-or-nothing)."""
        items = parse_ingest(body)
        resolved: List[tuple] = []
        for stream_id, action, interaction, level in items:
            runtime = self.router.resolve(stream_id)
            model = runtime.config.model
            if action.shape[0] != model.action_dim:
                raise WireError(
                    400,
                    f"stream {stream_id!r}: action has {action.shape[0]} "
                    f"features; the model expects {model.action_dim}",
                )
            if interaction.shape[0] != model.interaction_dim:
                raise WireError(
                    400,
                    f"stream {stream_id!r}: interaction has "
                    f"{interaction.shape[0]} features; the model expects "
                    f"{model.interaction_dim}",
                )
            resolved.append((runtime, (stream_id, action, interaction, level)))
        accepted, depth = self.admission.offer(resolved)
        if not accepted:
            retry_after = self.admission.retry_after_seconds
            return (
                429,
                {
                    "error": "ingest queue is full",
                    "queue_depth": depth,
                    "retry_after": retry_after,
                },
                [("Retry-After", str(int(math.ceil(retry_after))))],
            )
        return 202, {"accepted": len(items), "queue_depth": depth}, []

    def handle_detections(self, query: Dict[str, List[str]]) -> dict:
        """Poll (or long-poll) one stream's detections from ``start`` on."""
        stream = (query.get("stream") or [None])[0]
        if not stream:
            raise WireError(400, "query parameter 'stream' is required")
        try:
            start = int((query.get("start") or ["0"])[0])
            wait_ms = float((query.get("wait_ms") or ["0"])[0])
        except ValueError:
            raise WireError(400, "'start' and 'wait_ms' must be numbers") from None
        if start < 0 or wait_ms < 0:
            raise WireError(400, "'start' and 'wait_ms' must be non-negative")
        runtime = self.router.resolve(stream)
        deadline = time.monotonic() + min(wait_ms, self.config.long_poll_max_ms) / 1000.0
        with self._detections:
            while True:
                rows = list(runtime.detections(stream))
                if len(rows) > start:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._detections.wait(remaining)
        fresh = rows[start:]
        return {
            "stream": stream,
            "start": start,
            "next": start + len(fresh),
            "detections": [detection_to_json(detection) for detection in fresh],
        }

    def handle_drain(self) -> dict:
        return {"drained": self.drain()}

    def handle_health(self) -> dict:
        status = "ok" if self._batcher_error is None else "failing"
        return {
            "status": status,
            "tenants": {
                name: runtime.model_version for name, runtime in self.router.items()
            },
        }

    def handle_stats(self) -> dict:
        return self.stats()

    def handle_metrics(self) -> str:
        """The Prometheus exposition document for ``GET /metrics``."""
        return render_server_metrics(self)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Admission counters plus per-tenant serving/registry/plane state.

        The per-shard entries mirror
        :meth:`~repro.serving.service.ScoringService.load_stats` field for
        field, so a dashboard reading ``/stats`` sees the numbers the
        library API reports.
        """
        tenants = {}
        for name, runtime in self.router.items():
            tenants[name] = {
                "model_version": runtime.model_version,
                "update_triggers": len(runtime.update_triggers),
                "update_reports": len(runtime.update_reports),
                "pending_updates": runtime.service.pending_updates,
                "segments_scored": runtime.stats.segments_scored,
                "batches": runtime.stats.batches,
                "shards": [shard.to_dict() for shard in runtime.load_stats()],
                "executor": runtime.executor_stats(),
                "rebalance": runtime.rebalance_stats(),
                "durability": runtime.durability_stats(),
            }
        return {"admission": self.admission.stats(), "tenants": tenants}
