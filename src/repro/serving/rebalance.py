"""ShardStats-driven load rebalancing for the sharded serving runtime.

CRC-32 routing spreads streams uniformly *in expectation*, but live traffic
is not uniform: a flash crowd can pin a burst of hot streams onto one shard
while its siblings idle.  The :class:`Rebalancer` consumes the load signal
:meth:`~repro.serving.service.ScoringService.load_stats` established (queue
depth, occupancy, flush latency) and acts on it three ways, all of them
preserving the per-stream ordering contract:

* **New-stream diversion** — when the hash proposes a *hot* shard (queue
  depth at least ``hot_queue_factor`` times the active mean, and at least
  ``min_hot_depth``), a stream seen for the first time is pinned to the
  least-loaded active shard instead.  Existing streams never move: a route,
  once pinned, changes only through an explicit merge handoff.
* **Deterministic split** — under sustained backlog
  (``split_queue_depth``), the deepest shard triggers the creation of a
  fresh shard over the same registry/update plane; new streams start
  routing to it (it is the least loaded by construction) while every
  existing stream stays where it was.
* **Deterministic merge** — a split-created shard whose queue has been
  empty for ``merge_idle_rounds`` consecutive rebalance rounds hands its
  sessions — rolling windows, detection history and all — to the
  least-loaded survivor in one explicit handoff, its routes are re-pinned,
  and the shard is retired (never routed to again).

Every decision is recorded as a :class:`RebalanceDecision` (surfaced through
``/stats``), timestamps come from an injectable clock, and the whole policy
is a pure function of observed queue depths — two runs with the same
:class:`~repro.serving.service.ManualClock` schedule and the same seeded
load produce identical decisions and route tables.

Concurrency contract: :meth:`Rebalancer.route` runs inside the service's
route-table lock (the service calls it from ``shard_index``), and
:meth:`maybe_rebalance` — invoked at the top of every
:meth:`~repro.serving.sharding.ShardedScoringService.poll` — takes that lock
itself.  Split and merge additionally require *routing quiescence*: no other
thread may sit between its route lookup and its enqueue while a merge moves
sessions.  The supported deployment drives ingest and ``poll`` from one
thread — exactly what the HTTP tier's single batcher thread does — so this
is a documented deployment shape, not a new lock.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..utils.config import ShardingConfig

if TYPE_CHECKING:  # pragma: no cover - typing only (avoid import cycle)
    from .sharding import ShardedScoringService

__all__ = ["RebalanceDecision", "Rebalancer"]


@dataclass(frozen=True)
class RebalanceDecision:
    """One recorded rebalancing action.

    Attributes
    ----------
    kind:
        ``"route"`` (a new stream diverted away from a hot or retired
        shard), ``"split"`` (a shard added under backlog) or ``"merge"``
        (a split shard retired, sessions handed off).
    stream_id:
        The diverted stream for ``"route"`` decisions; ``None`` for
        topology changes.
    source:
        The shard the hash proposed (route), the shard that triggered the
        split, or the shard being retired (merge).
    target:
        The shard actually chosen (route), the freshly created shard
        (split), or the shard adopting the sessions (merge).
    reason:
        Human-readable trigger summary (queue depths, idle rounds).
    at:
        Clock reading when the decision was taken (the injected clock, so
        deterministic under a :class:`~repro.serving.service.ManualClock`).
    """

    kind: str
    stream_id: Optional[str]
    source: int
    target: int
    reason: str
    at: float

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (the ``/stats`` endpoint serves these)."""
        return dataclasses.asdict(self)


class Rebalancer:
    """Load-aware routing and topology policy over a sharded service.

    Construct with a :class:`~repro.utils.config.ShardingConfig` and hand it
    to :class:`~repro.serving.sharding.ShardedScoringService` (or set
    ``RuntimeConfig.sharding.rebalance=True`` and let the runtime wire it);
    the service calls :meth:`bind` once its shards exist.  With
    ``config.rebalance`` false every method is a no-op passthrough, keeping
    the pure-CRC-32 behaviour bitwise intact.
    """

    def __init__(
        self,
        config: Optional[ShardingConfig] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.config = config if config is not None else ShardingConfig(rebalance=True)
        self._clock: Callable[[], float] = clock if clock is not None else time.monotonic
        self._service: Optional["ShardedScoringService"] = None
        self.decisions: List[RebalanceDecision] = []
        self._idle_rounds: Dict[int, int] = {}

    def bind(self, service: "ShardedScoringService") -> None:
        """Attach to the service whose routes this policy may steer.

        Splitting creates shards over the source shard's registry, and
        diversion re-pins streams across shards, so rebalancing requires
        every shard to serve the *same* registry (the horizontal-scaling
        deployment shape).  Multi-model deployments keep their custom
        routers and leave ``rebalance`` off.
        """
        if self.config.rebalance:
            registries = {id(shard.registry) for shard in service.shards}
            if len(registries) > 1:
                raise ValueError(
                    "rebalancing requires all shards to share one registry; "
                    "multi-model deployments must keep rebalance disabled"
                )
        self._service = service

    # ------------------------------------------------------------------ #
    # New-stream routing (called under the service's route-table lock)
    # ------------------------------------------------------------------ #
    def route(self, stream_id: str, proposed: int) -> int:
        """Final shard for a stream seen for the first time.

        Called by ``shard_index`` *inside* the route lock, only for streams
        with no pinned route yet.  Diverts away from retired shards always,
        and away from hot shards when diversion can actually help (more
        than one active shard, and a strictly shallower target exists).
        """
        service = self._service
        if service is None or not self.config.rebalance:
            return proposed
        retired = service.retired_shards
        active = [i for i in range(len(service.shards)) if i not in retired]
        if not active:
            return proposed
        depths = {i: service.shards[i].queue_depth() for i in active}
        if proposed in retired:
            target = min(active, key=lambda i: (depths[i], i))
            self.decisions.append(
                RebalanceDecision(
                    kind="route",
                    stream_id=stream_id,
                    source=proposed,
                    target=target,
                    reason=f"shard {proposed} is retired",
                    at=self._clock(),
                )
            )
            return target
        if len(active) < 2:
            return proposed
        depth = depths[proposed]
        total = sum(depths.values())
        hot = (
            depth >= self.config.min_hot_depth
            and depth * len(active) >= self.config.hot_queue_factor * total
        )
        if not hot:
            return proposed
        target = min(
            (i for i in active if i != proposed), key=lambda i: (depths[i], i)
        )
        if depths[target] >= depth:
            return proposed  # everyone is equally deep; diversion buys nothing
        self.decisions.append(
            RebalanceDecision(
                kind="route",
                stream_id=stream_id,
                source=proposed,
                target=target,
                reason=(
                    f"hot shard: depth {depth} vs mean "
                    f"{total / len(active):.1f} across {len(active)} shards"
                ),
                at=self._clock(),
            )
        )
        return target

    # ------------------------------------------------------------------ #
    # Topology (called once per poll round, before scoring)
    # ------------------------------------------------------------------ #
    def maybe_rebalance(self) -> List[RebalanceDecision]:
        """Run one rebalance round: at most one split and one merge.

        Invoked at the top of every service ``poll()``.  Requires routing
        quiescence for the merge handoff (see the module docstring); the
        split half only appends a shard, which is safe under the route lock
        alone.
        """
        service = self._service
        if service is None or not self.config.rebalance:
            return []
        produced: List[RebalanceDecision] = []
        with service._routes_lock:
            retired = service.retired_shards
            active = [i for i in range(len(service.shards)) if i not in retired]
            depths = {i: service.shards[i].queue_depth() for i in active}
            if (
                self.config.split_queue_depth is not None
                and len(active) < self.config.max_shards
            ):
                candidates = [
                    i for i in active if depths[i] >= self.config.split_queue_depth
                ]
                if candidates:
                    # Deepest shard wins; ties break to the lowest index, so
                    # the choice is reproducible under identical load.
                    source = max(candidates, key=lambda i: (depths[i], -i))
                    new_index = service._spawn_shard_locked(source)
                    decision = RebalanceDecision(
                        kind="split",
                        stream_id=None,
                        source=source,
                        target=new_index,
                        reason=(
                            f"queue depth {depths[source]} >= "
                            f"split_queue_depth {self.config.split_queue_depth}"
                        ),
                        at=self._clock(),
                    )
                    self.decisions.append(decision)
                    produced.append(decision)
                    self._idle_rounds[new_index] = 0
                    active.append(new_index)
                    depths[new_index] = 0
            if self.config.merge_idle_rounds is not None:
                base = service._base_shards
                merged = False
                for index in sorted(i for i in active if i >= base):
                    if depths[index] == 0:
                        self._idle_rounds[index] = self._idle_rounds.get(index, 0) + 1
                    else:
                        self._idle_rounds[index] = 0
                    if (
                        not merged
                        and len(active) > 1
                        and self._idle_rounds[index] >= self.config.merge_idle_rounds
                    ):
                        survivors = [i for i in active if i != index]
                        target = min(survivors, key=lambda i: (depths[i], i))
                        idle = self._idle_rounds[index]
                        service._merge_shard_locked(index, target)
                        decision = RebalanceDecision(
                            kind="merge",
                            stream_id=None,
                            source=index,
                            target=target,
                            reason=(
                                f"split shard idle for {idle} consecutive "
                                f"rounds (merge_idle_rounds="
                                f"{self.config.merge_idle_rounds})"
                            ),
                            at=self._clock(),
                        )
                        self.decisions.append(decision)
                        produced.append(decision)
                        self._idle_rounds.pop(index, None)
                        active.remove(index)
                        merged = True
        return produced
