"""Multi-stream anomaly-scoring service on top of the fused inference engine.

The :class:`ScoringService` is the online counterpart of the batch
:class:`~repro.core.detector.AnomalyDetector`: it accepts per-segment
features from many concurrent :class:`~repro.streams.events.SocialVideoStream`
sessions, maintains each stream's rolling ``q``-segment history window,
coalesces ready segments *across streams* through a
:class:`~repro.serving.microbatch.MicroBatcher`, scores every batch with a
single fused ``predict_full`` pass, and routes the resulting detections back
to their streams.

The same forward pass also feeds the dynamic-maintenance machinery of
Section IV-D: final ``LSTM_I`` hidden states of presumed-normal segments are
buffered, and whenever the buffer fills, the drift check (Eq. 17) runs
against the historical hidden-state set.  The service does *not* retrain the
model itself — retraining is expensive and belongs on a control plane — it
emits :class:`UpdateTrigger` events that a caller can feed to
:class:`~repro.core.update.IncrementalUpdater`.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Mapping, Optional

import numpy as np

from ..core.detector import AnomalyDetector
from ..core.update import hidden_set_similarity
from ..features.pipeline import StreamFeatures
from ..utils.config import UpdateConfig
from .microbatch import MicroBatcher, ScoreRequest

__all__ = [
    "StreamDetection",
    "UpdateTrigger",
    "ServiceStats",
    "StreamSession",
    "ScoringService",
    "replay_streams",
]


@dataclass(frozen=True)
class StreamDetection:
    """One scored segment, routed back to its stream."""

    stream_id: str
    segment_index: int
    score: float
    action_error: float
    interaction_error: float
    is_anomaly: bool
    threshold: float


@dataclass(frozen=True)
class UpdateTrigger:
    """Drift signal emitted when the buffered hidden states diverge.

    Mirrors :class:`~repro.core.update.UpdateDecision`: ``similarity`` is the
    mean pairwise cosine between historical and buffered hidden states
    (Eq. 17), and the trigger fires when it drops to ``drift_threshold`` or
    below.
    """

    segment_index: int
    similarity: float
    buffered_segments: int
    stream_ids: tuple


@dataclass
class ServiceStats:
    """Aggregate serving counters (reset with :meth:`ScoringService.reset_stats`)."""

    segments_scored: int = 0
    batches: int = 0
    scoring_seconds: float = 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.segments_scored / self.batches if self.batches else 0.0

    def throughput(self) -> float:
        """Scored segments per second of scoring time."""
        if self.scoring_seconds <= 0.0:
            return 0.0
        return self.segments_scored / self.scoring_seconds


class StreamSession:
    """Rolling per-stream state: the last ``q`` feature vectors and results."""

    def __init__(self, stream_id: str, sequence_length: int) -> None:
        self.stream_id = stream_id
        self.sequence_length = sequence_length
        self.action_history: Deque[np.ndarray] = deque(maxlen=sequence_length)
        self.interaction_history: Deque[np.ndarray] = deque(maxlen=sequence_length)
        self.segments_seen = 0
        self.detections: List[StreamDetection] = []

    @property
    def warmed_up(self) -> bool:
        """Whether enough history exists to score the next incoming segment."""
        return len(self.action_history) == self.sequence_length

    def make_request(
        self,
        action_feature: np.ndarray,
        interaction_feature: np.ndarray,
        interaction_level: float,
    ) -> Optional[ScoreRequest]:
        """Observe one incoming segment; return a request once warmed up.

        The current history window predicts the incoming segment (it is the
        reconstruction target); afterwards the segment joins the window.
        """
        request: Optional[ScoreRequest] = None
        if self.warmed_up:
            request = ScoreRequest(
                stream_id=self.stream_id,
                segment_index=self.segments_seen,
                action_history=np.stack(self.action_history, axis=0),
                interaction_history=np.stack(self.interaction_history, axis=0),
                action_target=np.asarray(action_feature, dtype=np.float64),
                interaction_target=np.asarray(interaction_feature, dtype=np.float64),
                interaction_level=interaction_level,
            )
        self.action_history.append(np.asarray(action_feature, dtype=np.float64))
        self.interaction_history.append(np.asarray(interaction_feature, dtype=np.float64))
        self.segments_seen += 1
        return request


class ScoringService:
    """Micro-batching scoring front-end for many concurrent streams.

    Parameters
    ----------
    detector:
        A (typically calibrated) :class:`AnomalyDetector`; its CLSTM runs the
        fused batched forward, its threshold logic labels the scores.
    sequence_length:
        History length ``q`` of each stream's rolling window.
    max_batch_size:
        Micro-batch capacity; :meth:`submit` flushes automatically whenever a
        full batch has accumulated.
    update_config:
        Enables drift monitoring when provided (uses ``buffer_size`` and
        ``drift_threshold``; ``interaction_threshold`` falls back to the
        running mean of observed interaction levels, as in the paper).
    historical_hidden:
        Optional seed for the historical hidden-state set ``S_h``; when
        omitted, the first full buffer becomes the history (no trigger can
        fire before that).
    on_update_trigger:
        Optional callback invoked with each emitted :class:`UpdateTrigger`.
    max_history:
        Optional cap on the historical hidden-state set; when set, only the
        most recent ``max_history`` rows are kept after each absorption
        (Eq. 17 compares mean unit vectors, so a recency window changes the
        comparison set, not the statistic).  ``None`` is paper-faithful:
        the history grows without bound, like the offline updater's.
    """

    def __init__(
        self,
        detector: AnomalyDetector,
        sequence_length: int = 9,
        max_batch_size: int = 64,
        update_config: Optional[UpdateConfig] = None,
        historical_hidden: Optional[np.ndarray] = None,
        on_update_trigger: Optional[Callable[[UpdateTrigger], None]] = None,
        max_history: Optional[int] = None,
    ) -> None:
        if sequence_length < 1:
            raise ValueError("sequence_length must be positive")
        if max_history is not None and max_history < 1:
            raise ValueError("max_history must be positive when set")
        # Micro-batch composition must never influence a segment's label, so
        # batch-relative decision rules are rejected up front: top-k ranks
        # *within a batch*, and an uncalibrated detector would re-derive a
        # median+MAD threshold per micro-batch — both would make detections
        # depend on which unrelated streams happened to share the batch.
        if detector.config.top_k is not None:
            raise ValueError(
                "ScoringService needs an absolute threshold; top_k ranking is "
                "batch-relative and incompatible with micro-batched serving"
            )
        if detector.anomaly_threshold is None:
            raise ValueError(
                "ScoringService requires a calibrated detector (call "
                "AnomalyDetector.calibrate or set DetectionConfig.threshold)"
            )
        self.detector = detector
        self.sequence_length = sequence_length
        self.batcher = MicroBatcher(max_batch_size=max_batch_size)
        self.sessions: Dict[str, StreamSession] = {}
        self.stats = ServiceStats()
        self.update_config = update_config
        self.on_update_trigger = on_update_trigger
        self.update_triggers: List[UpdateTrigger] = []
        self._historical_hidden = (
            np.asarray(historical_hidden, dtype=np.float64)
            if historical_hidden is not None
            else None
        )
        self.max_history = max_history
        self._buffer_hidden: List[np.ndarray] = []
        self._buffer_streams: List[str] = []
        # Running mean of observed interaction levels (O(1) per segment).
        self._level_sum = 0.0
        self._level_count = 0

    # ------------------------------------------------------------------ #
    # Stream management
    # ------------------------------------------------------------------ #
    def session(self, stream_id: str) -> StreamSession:
        """The (lazily created) session of ``stream_id``."""
        if stream_id not in self.sessions:
            self.sessions[stream_id] = StreamSession(stream_id, self.sequence_length)
        return self.sessions[stream_id]

    def detections(self, stream_id: str) -> List[StreamDetection]:
        """All detections routed to ``stream_id`` so far."""
        return self.session(stream_id).detections

    def reset_stats(self) -> None:
        self.stats = ServiceStats()

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #
    def submit(
        self,
        stream_id: str,
        action_feature: np.ndarray,
        interaction_feature: np.ndarray,
        interaction_level: float = float("nan"),
    ) -> List[StreamDetection]:
        """Feed one incoming segment of one stream into the service.

        Returns the detections produced by any micro-batch this submission
        completed (usually empty — results for this very segment arrive with
        a later flush; this is the latency/throughput trade of micro-batching).
        """
        request = self.session(stream_id).make_request(
            action_feature, interaction_feature, float(interaction_level)
        )
        if request is not None:
            self.batcher.submit(request)
        produced: List[StreamDetection] = []
        while self.batcher.ready():
            produced.extend(self._score_requests(self.batcher.drain()))
        return produced

    def flush(self) -> List[StreamDetection]:
        """Score every queued request regardless of batch occupancy."""
        produced: List[StreamDetection] = []
        while len(self.batcher):
            produced.extend(self._score_requests(self.batcher.drain()))
        return produced

    # ------------------------------------------------------------------ #
    # Scoring core
    # ------------------------------------------------------------------ #
    def _score_requests(self, requests: List[ScoreRequest]) -> List[StreamDetection]:
        if not requests:
            return []
        started = time.perf_counter()
        (
            action_sequences,
            interaction_sequences,
            action_targets,
            interaction_targets,
            segment_indices,
        ) = MicroBatcher.assemble(requests)
        predicted_action, predicted_interaction, hidden, _ = self.detector.model.predict_full(
            action_sequences, interaction_sequences
        )
        result = self.detector.score_predictions(
            segment_indices,
            action_targets,
            interaction_targets,
            predicted_action,
            predicted_interaction,
        )
        self.stats.scoring_seconds += time.perf_counter() - started
        self.stats.segments_scored += len(requests)
        self.stats.batches += 1

        detections: List[StreamDetection] = []
        for position, request in enumerate(requests):
            detection = StreamDetection(
                stream_id=request.stream_id,
                segment_index=request.segment_index,
                score=float(result.scores[position]),
                action_error=float(result.action_errors[position]),
                interaction_error=float(result.interaction_errors[position]),
                is_anomaly=bool(result.is_anomaly[position]),
                threshold=float(result.threshold),
            )
            detections.append(detection)
            self.session(request.stream_id).detections.append(detection)
        self._observe_hidden(requests, hidden)
        return detections

    # ------------------------------------------------------------------ #
    # Drift monitoring (incremental-update triggers)
    # ------------------------------------------------------------------ #
    def _observe_hidden(self, requests: List[ScoreRequest], hidden: np.ndarray) -> None:
        if self.update_config is None:
            return
        threshold = self._interaction_threshold()
        for position, request in enumerate(requests):
            level = request.interaction_level
            if np.isnan(level):
                continue
            self._level_sum += level
            self._level_count += 1
            if level < threshold:
                self._buffer_hidden.append(hidden[position])
                self._buffer_streams.append(request.stream_id)
            if len(self._buffer_hidden) >= self.update_config.buffer_size:
                self._drift_check(request.segment_index)

    def _interaction_threshold(self) -> float:
        if self.update_config.interaction_threshold is not None:
            return self.update_config.interaction_threshold
        if self._level_count == 0:
            return float("inf")  # before any observation, everything buffers
        return self._level_sum / self._level_count

    def _drift_check(self, segment_index: int) -> None:
        incoming = np.stack(self._buffer_hidden, axis=0)
        if self._historical_hidden is None:
            # First full buffer seeds the history; no drift can be measured yet.
            self._historical_hidden = incoming
            self._clear_buffer()
            return
        similarity = hidden_set_similarity(self._historical_hidden, incoming)
        if similarity <= self.update_config.drift_threshold:
            trigger = UpdateTrigger(
                segment_index=segment_index,
                similarity=float(similarity),
                buffered_segments=len(self._buffer_hidden),
                stream_ids=tuple(sorted(set(self._buffer_streams))),
            )
            self.update_triggers.append(trigger)
            if self.on_update_trigger is not None:
                self.on_update_trigger(trigger)
        # History absorbs the buffer either way (line 14 of Fig. 5).
        self._historical_hidden = np.concatenate([self._historical_hidden, incoming], axis=0)
        if self.max_history is not None and len(self._historical_hidden) > self.max_history:
            self._historical_hidden = self._historical_hidden[-self.max_history :]
        self._clear_buffer()

    def _clear_buffer(self) -> None:
        self._buffer_hidden.clear()
        self._buffer_streams.clear()


def replay_streams(
    service: ScoringService,
    streams: Mapping[str, StreamFeatures],
    flush: bool = True,
) -> List[StreamDetection]:
    """Drive ``service`` with many streams arriving concurrently.

    Segments of all streams are interleaved round-robin (segment 0 of every
    stream, then segment 1 of every stream, ...), which is how aligned live
    streams reach a real ingest tier.  Returns every detection produced, in
    scoring order.
    """
    detections: List[StreamDetection] = []
    longest = max((features.num_segments for features in streams.values()), default=0)
    for position in range(longest):
        for stream_id, features in streams.items():
            if position >= features.num_segments:
                continue
            level = (
                float(features.normalised_interaction[position])
                if features.normalised_interaction.size > position
                else float("nan")
            )
            detections.extend(
                service.submit(
                    stream_id,
                    features.action[position],
                    features.interaction[position],
                    interaction_level=level,
                )
            )
    if flush:
        detections.extend(service.flush())
    return detections
