"""Multi-stream anomaly-scoring service on top of the fused inference engine.

The :class:`ScoringService` is the online counterpart of the batch
:class:`~repro.core.detector.AnomalyDetector`: it accepts per-segment
features from many concurrent :class:`~repro.streams.events.SocialVideoStream`
sessions, maintains each stream's rolling ``q``-segment history window,
coalesces ready segments *across streams* through a
:class:`~repro.serving.microbatch.MicroBatcher`, scores every batch with a
single fused ``predict_full`` pass, and routes the resulting detections back
to their streams.

The same forward pass also feeds the dynamic-maintenance machinery of
Section IV-D: final ``LSTM_I`` hidden states of presumed-normal segments are
buffered (together with the segments themselves), and whenever the buffer
fills, the drift check (Eq. 17) runs against the historical hidden-state
set.  Reaction to drift is pluggable: the service always emits
:class:`UpdateTrigger` events, and when an
:class:`~repro.serving.maintenance.UpdatePlane` is attached it additionally
hands the plane the drained presumed-normal sample buffer, closing the
paper's Fig. 5 loop inside the runtime — the plane retrains, merges,
re-calibrates ``T_a`` and publishes the new version back through the shared
:class:`~repro.serving.registry.ModelRegistry`.

Model access is registry-mediated: each service holds a
:class:`~repro.serving.registry.RegistryHandle` and pins the latest
published :class:`~repro.serving.registry.ModelSnapshot` once per
micro-batch, so every batch scores (forward pass, REIA combination and
threshold decision) against exactly one immutable model version even if a
swap lands mid-batch.  A wall-clock flush deadline (``max_batch_delay_ms``)
bounds how long a queued segment can wait for its batch to fill.

Thread-safety contract: the service is safe to drive from several threads
at once.  Two locks split the hot path so ingest never waits behind a GEMM:
a short *ingest lock* guards the session table and the micro-batch queue
(held only for the deque/window bookkeeping of one segment), and a *scoring
lock* serialises the batch pipeline — drain → pin → fused forward → route →
drift monitor — so a shard scores exactly one batch at a time while other
threads keep enqueuing.  The lock order is scoring → ingest; nothing ever
takes them in the opposite order.  :meth:`try_score_ready` is the
non-blocking entry the thread-parallel executor dispatches, and
:meth:`enqueue` is the scoring-free half of :meth:`submit` it feeds from.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Mapping, Optional

import numpy as np

from ..core.detector import AnomalyDetector
from ..core.update import hidden_set_similarity
from ..features.pipeline import StreamFeatures
from ..utils.config import UpdateConfig
from ..utils.timer import TimingAccumulator
from .microbatch import MicroBatcher, ScoreRequest
from .registry import ModelRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .maintenance import UpdatePlane

__all__ = [
    "StreamDetection",
    "UpdateTrigger",
    "ServiceStats",
    "ShardStats",
    "BatchScores",
    "StreamSession",
    "ManualClock",
    "ScoringService",
    "replay_streams",
    "validate_interaction_level",
]


def validate_interaction_level(level: Optional[float]) -> float:
    """Validate one submission's ``interaction_level`` at the ingest boundary.

    ``None`` is the explicit "unknown" opt-in: it maps to the internal ``nan``
    sentinel, which excludes the segment from drift tracking (the legacy
    behaviour of omitting the argument).  An actual *value* must be finite —
    historically a ``nan`` or ``inf`` computed from bad upstream data slid
    straight through the sharding boundary, silently disabling drift tracking
    (``nan``) or corrupting the running interaction-level mean (``inf``).
    Now every ingest path (``submit``/``enqueue``/``submit_many``/the HTTP
    tier, which turns the error into a 400) rejects it here instead.
    """
    if level is None:
        return float("nan")
    level = float(level)
    if not np.isfinite(level):
        raise ValueError(
            f"interaction_level must be finite, got {level!r} "
            "(pass None to mark the level unknown)"
        )
    return level


class ManualClock:
    """Deterministic clock for exercising wall-clock flush deadlines.

    Production services default to ``time.monotonic``; tests, benchmarks and
    replay drivers inject a ``ManualClock`` and advance simulated time
    explicitly, which keeps deadline behaviour reproducible.

    Reads are safe from any thread (a float rebind is atomic under the GIL);
    :meth:`advance` should be driven by a single thread, as a replay driver
    does — two drivers advancing one clock have no meaningful combined time.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("time can only advance forwards")
        self.now += seconds


@dataclass(frozen=True)
class StreamDetection:
    """One scored segment, routed back to its stream.

    ``model_version`` records which registry snapshot produced the decision,
    so post-swap detections are attributable to the model that made them;
    ``precision`` records the compute precision of the forward pass that
    produced the score (the threshold itself is always float64-calibrated).
    """

    stream_id: str
    segment_index: int
    score: float
    action_error: float
    interaction_error: float
    is_anomaly: bool
    threshold: float
    model_version: int = 1
    precision: str = "float64"


@dataclass(frozen=True)
class UpdateTrigger:
    """Drift signal emitted when the buffered hidden states diverge.

    Mirrors :class:`~repro.core.update.UpdateDecision`: ``similarity`` is the
    mean pairwise cosine between historical and buffered hidden states
    (Eq. 17), and the trigger fires when it drops to ``drift_threshold`` or
    below.  ``stream_ids`` lists the streams that contributed buffered
    segments — deduplicated and sorted, so the tuple is deterministic
    regardless of buffer insertion order.
    """

    segment_index: int
    similarity: float
    buffered_segments: int
    stream_ids: tuple[str, ...]
    model_version: int = 1
    """Version pinned by the micro-batch whose segment completed the buffer.
    When a swap lands while the buffer is filling, earlier buffered hidden
    states may come from older versions — this field records where the
    drift check *ran*, not a provenance guarantee for every buffered row."""


@dataclass
class ServiceStats:
    """Aggregate serving counters (reset with :meth:`ScoringService.reset_stats`)."""

    segments_scored: int = 0
    batches: int = 0
    scoring_seconds: float = 0.0
    forward_seconds: float = 0.0
    """Seconds in the fused CLSTM forward (``predict_full``); for remote
    kernels the whole worker round-trip is counted here (the split is not
    observable across the process boundary)."""
    score_seconds: float = 0.0
    """Seconds in the REIA combination + threshold decision."""
    update_seconds: float = 0.0
    """Seconds in drift-triggered maintenance (update-plane retrains)."""

    @property
    def mean_batch_size(self) -> float:
        return self.segments_scored / self.batches if self.batches else 0.0

    def throughput(self) -> float:
        """Scored segments per second of scoring time."""
        if self.scoring_seconds <= 0.0:
            return 0.0
        return self.segments_scored / self.scoring_seconds


@dataclass(frozen=True)
class ShardStats:
    """One consistent load sample of one scoring shard.

    Taken under the shard's locks by :meth:`ScoringService.load_stats`, so
    the counters are mutually consistent even while worker threads score.
    This is the signal a future rebalancer consumes: persistent queue depth
    says a shard is oversubscribed, low batch occupancy says its stream
    fan-in is too small for its batch size, and mean batch latency says how
    expensive its model is per flush.
    """

    shard_index: int
    streams: int
    """Streams with a session routed to this shard."""

    queue_depth: int
    """Requests waiting in the micro-batcher right now."""

    segments_scored: int
    batches: int
    scoring_seconds: float
    max_batch_size: int

    latency_p50_ms: float = 0.0
    """Median flush-to-score latency (oldest queued arrival → batch scored,
    milliseconds) over the shard's bounded latency reservoir."""

    latency_p95_ms: float = 0.0
    """95th-percentile flush-to-score latency over the reservoir."""

    latency_p99_ms: float = 0.0
    """99th-percentile flush-to-score latency over the reservoir — the tail
    signal a rebalancer (and an operator) needs beyond means."""

    forward_seconds: float = 0.0
    """Seconds spent in the fused forward kernel (see
    :attr:`ServiceStats.forward_seconds` for the remote-kernel caveat)."""

    score_seconds: float = 0.0
    """Seconds spent in REIA scoring + threshold decisions."""

    update_seconds: float = 0.0
    """Seconds spent in drift-triggered update-plane maintenance."""

    @property
    def mean_batch_size(self) -> float:
        return self.segments_scored / self.batches if self.batches else 0.0

    @property
    def batch_occupancy(self) -> float:
        """Mean fraction of batch capacity actually filled, in ``(0, 1]``."""
        return self.mean_batch_size / self.max_batch_size if self.batches else 0.0

    @property
    def mean_batch_latency_ms(self) -> float:
        """Mean scoring cost per flushed batch (milliseconds)."""
        return 1e3 * self.scoring_seconds / self.batches if self.batches else 0.0

    @property
    def mean_forward_ms(self) -> float:
        """Mean fused-forward kernel time per flushed batch (milliseconds)."""
        return 1e3 * self.forward_seconds / self.batches if self.batches else 0.0

    @property
    def mean_score_ms(self) -> float:
        """Mean REIA-scoring kernel time per flushed batch (milliseconds)."""
        return 1e3 * self.score_seconds / self.batches if self.batches else 0.0

    @property
    def throughput(self) -> float:
        """Scored segments per second of scoring time."""
        if self.scoring_seconds <= 0.0:
            return 0.0
        return self.segments_scored / self.scoring_seconds

    def to_dict(self) -> Dict[str, float]:
        """JSON-safe view: every field plus every derived property.

        The single source of the wire shape ``/stats`` serves per shard —
        the HTTP tier and the Prometheus renderer both read this, so a field
        added here shows up everywhere at once.
        """
        return {
            "shard_index": self.shard_index,
            "streams": self.streams,
            "queue_depth": self.queue_depth,
            "segments_scored": self.segments_scored,
            "batches": self.batches,
            "scoring_seconds": self.scoring_seconds,
            "max_batch_size": self.max_batch_size,
            "mean_batch_size": self.mean_batch_size,
            "batch_occupancy": self.batch_occupancy,
            "mean_batch_latency_ms": self.mean_batch_latency_ms,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "forward_seconds": self.forward_seconds,
            "score_seconds": self.score_seconds,
            "update_seconds": self.update_seconds,
            "mean_forward_ms": self.mean_forward_ms,
            "mean_score_ms": self.mean_score_ms,
            "throughput": self.throughput,
        }


@dataclass(frozen=True)
class BatchScores:
    """Result of one micro-batch's compute kernel (forward + REIA scoring).

    This is the seam the process-parallel executor plugs into: everything in
    :meth:`ScoringService._score_requests` *except* the fused forward and
    :meth:`~repro.core.detector.AnomalyDetector.score_predictions` —
    snapshot pinning, batch assembly, detection routing, drift monitoring —
    stays in the calling process; the kernel itself may run locally or in a
    worker interpreter over a shared-memory snapshot, returning exactly
    these arrays either way.
    """

    scores: np.ndarray
    action_errors: np.ndarray
    interaction_errors: np.ndarray
    is_anomaly: np.ndarray
    threshold: float
    hidden: np.ndarray
    """Final ``LSTM_I`` hidden states, ``(batch, h1)`` — the drift monitor
    consumes these in the parent regardless of where the forward ran."""


class StreamSession:
    """Rolling per-stream state: the last ``q`` feature vectors and results."""

    def __init__(self, stream_id: str, sequence_length: int) -> None:
        self.stream_id = stream_id
        self.sequence_length = sequence_length
        self.action_history: Deque[np.ndarray] = deque(maxlen=sequence_length)
        self.interaction_history: Deque[np.ndarray] = deque(maxlen=sequence_length)
        self.segments_seen = 0
        self.detections: List[StreamDetection] = []

    @property
    def warmed_up(self) -> bool:
        """Whether enough history exists to score the next incoming segment."""
        return len(self.action_history) == self.sequence_length

    def make_request(
        self,
        action_feature: np.ndarray,
        interaction_feature: np.ndarray,
        interaction_level: float,
    ) -> Optional[ScoreRequest]:
        """Observe one incoming segment; return a request once warmed up.

        The current history window predicts the incoming segment (it is the
        reconstruction target); afterwards the segment joins the window.
        """
        request: Optional[ScoreRequest] = None
        if self.warmed_up:
            request = ScoreRequest(
                stream_id=self.stream_id,
                segment_index=self.segments_seen,
                action_history=np.stack(self.action_history, axis=0),
                interaction_history=np.stack(self.interaction_history, axis=0),
                action_target=np.asarray(action_feature, dtype=np.float64),
                interaction_target=np.asarray(interaction_feature, dtype=np.float64),
                interaction_level=interaction_level,
            )
        self.action_history.append(np.asarray(action_feature, dtype=np.float64))
        self.interaction_history.append(np.asarray(interaction_feature, dtype=np.float64))
        self.segments_seen += 1
        return request


class ScoringService:
    """Micro-batching scoring front-end for many concurrent streams.

    Parameters
    ----------
    detector:
        A calibrated :class:`AnomalyDetector`; compatibility entry point that
        bootstraps a single-version :class:`ModelRegistry` around a frozen
        snapshot of it — mutating the detector (weights or threshold) after
        construction does not change what is served; publish a new version
        instead.  Mutually exclusive with ``registry``.
    sequence_length:
        History length ``q`` of each stream's rolling window.
    max_batch_size:
        Micro-batch capacity; :meth:`submit` flushes automatically whenever a
        full batch has accumulated.
    update_config:
        Enables drift monitoring when provided (uses ``buffer_size`` and
        ``drift_threshold``; ``interaction_threshold`` falls back to the
        running mean of observed interaction levels, as in the paper).
    historical_hidden:
        Optional seed for the historical hidden-state set ``S_h``; when
        omitted, the first full buffer becomes the history (no trigger can
        fire before that).
    on_update_trigger:
        Optional callback invoked with each emitted :class:`UpdateTrigger`.
    max_history:
        Optional cap on the historical hidden-state set; when set, only the
        most recent ``max_history`` rows are kept after each absorption
        (Eq. 17 compares mean unit vectors, so a recency window changes the
        comparison set, not the statistic).  ``None`` is paper-faithful:
        the history grows without bound, like the offline updater's.
    registry:
        A :class:`ModelRegistry` with at least one published snapshot; the
        service pins its latest version once per micro-batch.  Mutually
        exclusive with ``detector``.
    update_plane:
        Optional :class:`~repro.serving.maintenance.UpdatePlane` wired to the
        *same* registry; every drift trigger is handed to it together with
        the drained presumed-normal sample buffer (requires
        ``update_config``).
    max_batch_delay_ms:
        Wall-clock flush deadline: once the oldest queued request has waited
        this long, the partial batch is scored (on :meth:`submit` or
        :meth:`poll`).  ``None`` keeps the count-based flush only.
    clock:
        Monotonic time source for the deadline (defaults to
        ``time.monotonic``); tests inject a :class:`ManualClock`.
    max_queue_depth:
        Optional bound on queued-but-unscored requests; when reached,
        ingest raises :class:`~repro.serving.microbatch.QueueFull` instead
        of growing the queue without limit (the admission-control hook the
        HTTP tier builds on).  ``None`` keeps the historical unbounded
        queue.
    """

    def __init__(
        self,
        detector: Optional[AnomalyDetector] = None,
        sequence_length: int = 9,
        max_batch_size: int = 64,
        update_config: Optional[UpdateConfig] = None,
        historical_hidden: Optional[np.ndarray] = None,
        on_update_trigger: Optional[Callable[[UpdateTrigger], None]] = None,
        max_history: Optional[int] = None,
        *,
        registry: Optional[ModelRegistry] = None,
        update_plane: Optional["UpdatePlane"] = None,
        max_batch_delay_ms: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        max_queue_depth: Optional[int] = None,
        latency_reservoir: int = 512,
    ) -> None:
        if sequence_length < 1:
            raise ValueError("sequence_length must be positive")
        if max_history is not None and max_history < 1:
            raise ValueError("max_history must be positive when set")
        if latency_reservoir < 1:
            raise ValueError("latency_reservoir must be positive")
        # Lock order is always scoring → ingest (see the module docstring).
        # The scoring lock serialises whole batch pipelines; the ingest lock
        # is held only for per-segment queue/session bookkeeping, so ingest
        # threads never block behind a fused forward.
        self._score_lock = threading.RLock()
        self._ingest_lock = threading.RLock()
        if (detector is None) == (registry is None):
            raise ValueError("pass exactly one of detector= or registry=")
        if registry is None:
            # ModelRegistry owns the serving-compatibility rules (absolute
            # thresholds only, calibrated detector) — batch-relative decision
            # rules would make a segment's label depend on which unrelated
            # streams happened to share its micro-batch.
            registry = ModelRegistry.from_detector(detector)
        elif len(registry) == 0:
            raise ValueError("registry must hold at least one published snapshot")
        self.registry = registry
        self._handle = registry.handle()
        self.update_config = update_config
        self._update_plane: Optional["UpdatePlane"] = None
        # Full sample payloads are only retained when something consumes them
        # — with no update plane, holding buffer_size feature windows would
        # pin megabytes per drift check for nothing.
        self._buffer_requests: Optional[List[ScoreRequest]] = None
        self.update_plane = update_plane  # validating property
        self.sequence_length = sequence_length
        self.max_batch_delay_ms = max_batch_delay_ms
        self._clock: Callable[[], float] = clock if clock is not None else time.monotonic
        self.batcher = MicroBatcher(
            max_batch_size=max_batch_size,
            max_delay_seconds=(
                max_batch_delay_ms / 1000.0 if max_batch_delay_ms is not None else None
            ),
            max_pending=max_queue_depth,
        )
        self.sessions: Dict[str, StreamSession] = {}
        self.stats = ServiceStats()
        # Per-kernel wall-time split (forward / score / update) feeding the
        # ShardStats timing fields; mutated only under the scoring lock.
        self._kernel_timings = TimingAccumulator()
        self.on_update_trigger = on_update_trigger
        self.update_triggers: List[UpdateTrigger] = []
        self._historical_hidden = (
            np.asarray(historical_hidden, dtype=np.float64)
            if historical_hidden is not None
            else None
        )
        self.max_history = max_history
        self._buffer_hidden: List[np.ndarray] = []
        self._buffer_stream_ids: List[str] = []
        # Running mean of observed interaction levels (O(1) per segment).
        self._level_sum = 0.0
        self._level_count = 0
        # Bounded flush-to-score latency reservoir (ms); feeds the
        # p50/p95/p99 fields of load_stats().  Mutated only under the
        # scoring lock, read under both locks by load_stats.
        self._latencies: Deque[float] = deque(maxlen=latency_reservoir)
        # Pluggable compute kernel: when set (by the process-parallel
        # executor's bind), _score_requests ships each assembled batch to
        # it — (snapshot, sequences..., targets..., indices) -> BatchScores
        # — instead of running the fused forward locally.  Everything else
        # (pinning, routing, drift, checkpoints) is unaffected.
        self.remote_compute: Optional[Callable[..., BatchScores]] = None

    @property
    def update_plane(self) -> Optional["UpdatePlane"]:
        """The attached maintenance plane (settable; validated on set)."""
        return self._update_plane

    @update_plane.setter
    def update_plane(self, plane: Optional["UpdatePlane"]) -> None:
        if plane is not None:
            if plane.registry is not self.registry:
                raise ValueError(
                    "update_plane must publish into the same registry this service reads"
                )
            if self.update_config is None:
                raise ValueError("update_plane requires update_config (drift monitoring)")
            if self._buffer_requests is None:
                # Start collecting sample payloads from here on; segments
                # buffered before the plane was attached have hidden states
                # but no retainable windows.
                self._buffer_requests = []
        else:
            self._buffer_requests = None
        self._update_plane = plane

    @property
    def detector(self) -> AnomalyDetector:
        """The currently published snapshot's detector (read-only view)."""
        return self.registry.latest().detector

    @property
    def model_version(self) -> int:
        """Version number of the currently published snapshot."""
        return self.registry.latest().version

    @property
    def model_swaps_observed(self) -> int:
        """How many version changes this service's batches have crossed."""
        return self._handle.swaps_observed

    # ------------------------------------------------------------------ #
    # Stream management
    # ------------------------------------------------------------------ #
    def session(self, stream_id: str) -> StreamSession:
        """The (lazily created) session of ``stream_id``."""
        with self._ingest_lock:
            if stream_id not in self.sessions:
                self.sessions[stream_id] = StreamSession(stream_id, self.sequence_length)
            return self.sessions[stream_id]

    def detections(self, stream_id: str) -> List[StreamDetection]:
        """All detections routed to ``stream_id`` so far."""
        return self.session(stream_id).detections

    def reset_stats(self) -> None:
        with self._score_lock:
            self.stats = ServiceStats()
            self._kernel_timings = TimingAccumulator()
            self._latencies.clear()

    def queue_depth(self) -> int:
        """Requests waiting in the micro-batcher right now (thread-safe).

        The cheap load probe the rebalancer polls per routing decision —
        only the ingest lock is taken, so it never waits behind a forward.
        """
        with self._ingest_lock:
            return len(self.batcher)

    def load_stats(self, shard_index: int = 0) -> "ShardStats":
        """One consistent :class:`ShardStats` sample of this service."""
        with self._score_lock, self._ingest_lock:
            if self._latencies:
                samples = np.fromiter(self._latencies, dtype=np.float64)
                p50, p95, p99 = np.percentile(samples, [50.0, 95.0, 99.0])
            else:
                p50 = p95 = p99 = 0.0
            return ShardStats(
                shard_index=shard_index,
                streams=len(self.sessions),
                queue_depth=len(self.batcher),
                segments_scored=self.stats.segments_scored,
                batches=self.stats.batches,
                scoring_seconds=self.stats.scoring_seconds,
                max_batch_size=self.batcher.max_batch_size,
                latency_p50_ms=float(p50),
                latency_p95_ms=float(p95),
                latency_p99_ms=float(p99),
                forward_seconds=self.stats.forward_seconds,
                score_seconds=self.stats.score_seconds,
                update_seconds=self.stats.update_seconds,
            )

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #
    def _enqueue(
        self,
        stream_id: str,
        action_feature: np.ndarray,
        interaction_feature: np.ndarray,
        interaction_level: Optional[float],
    ) -> Optional[float]:
        """Window + queue one segment; return its arrival stamp (no scoring)."""
        level = validate_interaction_level(interaction_level)
        # Always stamp arrivals: deadline-less services still need them for
        # the flush-to-score latency percentiles (expired() stays inert
        # without a max_delay_seconds, so deadline behaviour is unchanged).
        now = self._clock()
        with self._ingest_lock:
            request = self.session(stream_id).make_request(
                action_feature, interaction_feature, level
            )
            if request is not None:
                self.batcher.submit(request, now=now)
        return now

    def enqueue(
        self,
        stream_id: str,
        action_feature: np.ndarray,
        interaction_feature: np.ndarray,
        interaction_level: Optional[float] = None,
    ) -> None:
        """Queue one segment without scoring anything.

        The scoring-free half of :meth:`submit`, used by executor-driven
        ingest: the sharded service enqueues on the caller's thread and fans
        the resulting ready batches out to its worker pool.  Whoever calls
        :meth:`try_score_ready` / :meth:`poll` / :meth:`flush` next scores
        the queued work.
        """
        self._enqueue(stream_id, action_feature, interaction_feature, interaction_level)

    def has_ready_work(self) -> bool:
        """Whether a full or deadline-expired batch is waiting to be scored."""
        with self._ingest_lock:
            return self.batcher.ready() or self.batcher.expired(self._clock())

    def _score_while_ready(self) -> List[StreamDetection]:
        """Score batches while one is full or past its deadline.

        Caller must hold the scoring lock.  The queue is re-checked under the
        ingest lock before every drain, so requests enqueued by other threads
        *during* a fused forward are picked up by the same loop.
        """
        produced: List[StreamDetection] = []
        while True:
            with self._ingest_lock:
                flushable = self.batcher.ready() or self.batcher.expired(self._clock())
                arrival = self.batcher.oldest_arrival()
                requests = self.batcher.drain() if flushable else []
            if not requests:
                return produced
            produced.extend(self._score_requests(requests, batch_arrival=arrival))

    def submit(
        self,
        stream_id: str,
        action_feature: np.ndarray,
        interaction_feature: np.ndarray,
        interaction_level: Optional[float] = None,
    ) -> List[StreamDetection]:
        """Feed one incoming segment of one stream into the service.

        ``interaction_level`` must be finite when given; ``None`` (the
        default) marks it unknown and excludes the segment from drift
        tracking — see :func:`validate_interaction_level`.

        Returns the detections produced by any micro-batch this submission
        completed (usually empty — results for this very segment arrive with
        a later flush; this is the latency/throughput trade of micro-batching).
        """
        with self._score_lock:
            now = self._enqueue(
                stream_id, action_feature, interaction_feature, interaction_level
            )
            produced: List[StreamDetection] = []
            while True:
                with self._ingest_lock:
                    arrival = self.batcher.oldest_arrival()
                    requests = self.batcher.drain() if self.batcher.ready() else []
                if not requests:
                    break
                produced.extend(self._score_requests(requests, batch_arrival=arrival))
            with self._ingest_lock:
                arrival = self.batcher.oldest_arrival()
                requests = self.batcher.drain() if self.batcher.expired(now) else []
            if requests:
                produced.extend(self._score_requests(requests, batch_arrival=arrival))
            return produced

    def poll(self) -> List[StreamDetection]:
        """Flush batches whose wall-clock deadline has passed (and full ones).

        Drivers with a real event loop would run this on a timer; the
        synchronous replay drivers call it whenever simulated time advances.
        """
        with self._score_lock:
            return self._score_while_ready()

    def try_score_ready(self) -> List[StreamDetection]:
        """Non-blocking :meth:`poll`: score ready batches unless busy.

        Returns immediately with ``[]`` when another thread already holds
        the scoring lock — that thread's scoring loop re-checks the queue
        after every batch, so the ready work this call observed is picked up
        by it (or by the next poll/submit).  This is what keeps at most one
        fused forward per shard in flight under the parallel executor.
        """
        if not self._score_lock.acquire(blocking=False):
            return []
        try:
            return self._score_while_ready()
        finally:
            self._score_lock.release()

    def flush(self) -> List[StreamDetection]:
        """Score every queued request regardless of batch occupancy."""
        with self._score_lock:
            produced: List[StreamDetection] = []
            while True:
                with self._ingest_lock:
                    arrival = self.batcher.oldest_arrival()
                    requests = self.batcher.drain()
                if not requests:
                    return produced
                produced.extend(self._score_requests(requests, batch_arrival=arrival))

    def drain(self) -> List[StreamDetection]:
        """Terminal flush: honour expired deadlines first, then score the rest.

        :meth:`flush` alone is deadline-blind, and :meth:`poll` alone *skips*
        a final under-filled batch whenever the clock never advances past the
        flush deadline — a deadline-driven driver that ends its run on
        ``poll()`` would strand those requests forever.  ``drain()`` is the
        terminal operation: it first runs the deadline loop (so batches that
        *are* past their deadline flush with exactly the boundaries a running
        service would have given them), then scores everything still queued.
        After it returns the queue is empty.
        """
        with self._score_lock:
            produced = self._score_while_ready()
            produced.extend(self.flush())
            return produced

    # ------------------------------------------------------------------ #
    # Scoring core
    # ------------------------------------------------------------------ #
    def _score_requests(
        self,
        requests: List[ScoreRequest],
        batch_arrival: Optional[float] = None,
    ) -> List[StreamDetection]:
        if not requests:
            return []
        started = time.perf_counter()
        # Pin exactly one model version for the whole batch: forward pass,
        # REIA combination and threshold decision all come from `snapshot`.
        # A publish landing while this batch runs (the update plane executes
        # inside the drift-trigger path below) is only seen by the next pin.
        snapshot = self._handle.pin()
        (
            action_sequences,
            interaction_sequences,
            action_targets,
            interaction_targets,
            segment_indices,
        ) = MicroBatcher.assemble(requests)
        timings = self._kernel_timings
        if self.remote_compute is not None:
            # The forward/score split happens inside the worker interpreter;
            # the whole round-trip is attributed to "forward" (the dominant
            # cost) rather than inventing an unobservable split.
            with timings.measure("forward"):
                batch = self.remote_compute(
                    snapshot,
                    action_sequences,
                    interaction_sequences,
                    action_targets,
                    interaction_targets,
                    segment_indices,
                )
        else:
            with timings.measure("forward"):
                predicted_action, predicted_interaction, hidden, _ = snapshot.model.predict_full(
                    action_sequences, interaction_sequences
                )
            with timings.measure("score"):
                result = snapshot.detector.score_predictions(
                    segment_indices,
                    action_targets,
                    interaction_targets,
                    predicted_action,
                    predicted_interaction,
                )
            batch = BatchScores(
                scores=result.scores,
                action_errors=result.action_errors,
                interaction_errors=result.interaction_errors,
                is_anomaly=result.is_anomaly,
                threshold=float(result.threshold),
                hidden=hidden,
            )
        self.stats.scoring_seconds += time.perf_counter() - started
        self.stats.segments_scored += len(requests)
        self.stats.batches += 1
        self.stats.forward_seconds = timings.total("forward")
        self.stats.score_seconds = timings.total("score")
        if batch_arrival is not None:
            # Flush-to-score latency: oldest queued arrival of this batch to
            # now, in ms.  Clamped at zero for ManualClock-driven replays
            # that never advance time.
            self._latencies.append(max(0.0, (self._clock() - batch_arrival) * 1000.0))

        detections: List[StreamDetection] = []
        precision = getattr(snapshot.model, "precision", "float64")
        for position, request in enumerate(requests):
            detection = StreamDetection(
                stream_id=request.stream_id,
                segment_index=request.segment_index,
                score=float(batch.scores[position]),
                action_error=float(batch.action_errors[position]),
                interaction_error=float(batch.interaction_errors[position]),
                is_anomaly=bool(batch.is_anomaly[position]),
                threshold=float(batch.threshold),
                model_version=snapshot.version,
                precision=precision,
            )
            detections.append(detection)
            self.session(request.stream_id).detections.append(detection)
        self._observe_hidden(requests, batch.hidden, snapshot.version)
        return detections

    # ------------------------------------------------------------------ #
    # Drift monitoring (incremental-update triggers)
    # ------------------------------------------------------------------ #
    def _observe_hidden(
        self, requests: List[ScoreRequest], hidden: np.ndarray, model_version: int
    ) -> None:
        if self.update_config is None:
            return
        threshold = self._interaction_threshold()
        reactions: List[tuple] = []
        for position, request in enumerate(requests):
            level = request.interaction_level
            if np.isnan(level):
                continue
            self._level_sum += level
            self._level_count += 1
            if level < threshold:
                self._buffer_hidden.append(hidden[position])
                self._buffer_stream_ids.append(request.stream_id)
                if self._buffer_requests is not None:
                    self._buffer_requests.append(request)
            if len(self._buffer_hidden) >= self.update_config.buffer_size:
                reaction = self._drift_check(request.segment_index, model_version)
                if reaction is not None:
                    reactions.append(reaction)
        # React only after every row of the batch has been observed.  The
        # drift transaction itself (similarity check, history absorption,
        # buffer clear) completed inside _drift_check, so by the time the
        # update plane or a trigger callback runs — both may checkpoint the
        # runtime — the monitor is in a consistent, resumable state and no
        # half-observed batch is left behind: a checkpoint taken inside a
        # callback lands exactly on an inter-batch boundary.
        for trigger, samples in reactions:
            if samples is not None:
                # Close the Fig. 5 loop in-runtime: train on the drained
                # presumed-normal buffer, merge, re-calibrate, publish.  The
                # swap becomes visible at the next batch's snapshot pin.
                with self._kernel_timings.measure("update"):
                    self.update_plane.handle_trigger(trigger, samples)
                self.stats.update_seconds = self._kernel_timings.total("update")
            if self.on_update_trigger is not None:
                self.on_update_trigger(trigger)

    def _interaction_threshold(self) -> float:
        if self.update_config.interaction_threshold is not None:
            return self.update_config.interaction_threshold
        if self._level_count == 0:
            return float("inf")  # before any observation, everything buffers
        return self._level_sum / self._level_count

    def _drift_check(self, segment_index: int, model_version: int) -> Optional[tuple]:
        """Run one drift check; return the deferred reaction (or ``None``).

        The whole drift *transaction* happens here — similarity, trigger
        recording, sample materialisation, history absorption (line 14 of
        Fig. 5) and buffer clearing — but the *reaction* (update plane,
        user callback) is returned to the caller to run once the batch is
        fully observed.
        """
        incoming = np.stack(self._buffer_hidden, axis=0)
        if self._historical_hidden is None:
            # First full buffer seeds the history; no drift can be measured yet.
            self._historical_hidden = incoming
            self._clear_buffer()
            return None
        similarity = hidden_set_similarity(
            self._historical_hidden, incoming, statistic=self.update_config.drift_statistic
        )
        reaction: Optional[tuple] = None
        if similarity <= self.update_config.drift_threshold:
            trigger = UpdateTrigger(
                segment_index=segment_index,
                similarity=float(similarity),
                buffered_segments=len(self._buffer_hidden),
                stream_ids=tuple(sorted(set(self._buffer_stream_ids))),
                model_version=model_version,
            )
            self.update_triggers.append(trigger)
            samples: Optional[tuple] = None
            if self.update_plane is not None and len(self._buffer_requests) == len(
                self._buffer_hidden
            ):
                # (A plane attached mid-buffer retained only part of this
                # buffer's samples — skip the update rather than train and
                # re-calibrate on a fragment; the next full buffer is
                # complete, since the buffer clears below.)
                samples = tuple(self._buffer_requests)
            reaction = (trigger, samples)
        # History absorbs the buffer either way (line 14 of Fig. 5).
        self._historical_hidden = np.concatenate([self._historical_hidden, incoming], axis=0)
        if self.max_history is not None and len(self._historical_hidden) > self.max_history:
            self._historical_hidden = self._historical_hidden[-self.max_history :]
        self._clear_buffer()
        return reaction

    def _clear_buffer(self) -> None:
        self._buffer_hidden.clear()
        self._buffer_stream_ids.clear()
        if self._buffer_requests is not None:
            self._buffer_requests.clear()

    # ------------------------------------------------------------------ #
    # Session handoff (shard merge)
    # ------------------------------------------------------------------ #
    def evict_sessions(self) -> Dict[str, StreamSession]:
        """Hand every session (windows, history, detections) to the caller.

        The donor half of a shard-merge handoff: the returned sessions are
        removed from this service and must be re-homed via another shard's
        :meth:`adopt_sessions`.  Refuses while requests are still queued —
        a merge only retires a shard whose queue has drained, so in-flight
        work can never be separated from its session.
        """
        with self._score_lock, self._ingest_lock:
            if len(self.batcher):
                raise RuntimeError(
                    "cannot evict sessions while requests are queued; "
                    "drain the shard first"
                )
            sessions, self.sessions = self.sessions, {}
            return sessions

    def adopt_sessions(self, sessions: Mapping[str, StreamSession]) -> None:
        """Adopt sessions evicted from another shard (merge handoff)."""
        with self._ingest_lock:
            duplicates = set(sessions) & set(self.sessions)
            if duplicates:
                raise ValueError(
                    f"streams already have sessions here: {sorted(duplicates)[:5]}"
                )
            self.sessions.update(sessions)

    # ------------------------------------------------------------------ #
    # Durable state (checkpoint/restore)
    # ------------------------------------------------------------------ #
    def export_state(self) -> Dict[str, object]:
        """Everything a restored service needs to *continue* this one.

        Covers the per-stream rolling windows, the drift monitor (history
        set, presumed-normal buffers, interaction-level running mean) and the
        requests still queued in the micro-batcher.  Deliberately excluded —
        they are reporting, not behaviour: past detections, emitted triggers,
        and serving counters (a restored service starts those at zero).
        The returned structure is JSON-plus-ndarray; the runtime's checkpoint
        codec handles persistence.  Taken under both locks, so the export is
        a consistent cut even while worker threads are active (callers should
        still quiesce background update planes first — the runtime does).
        """
        with self._score_lock, self._ingest_lock:
            return self._export_state_locked()

    def _export_state_locked(self) -> Dict[str, object]:
        return {
            "sessions": {
                stream_id: {
                    "action_history": list(session.action_history),
                    "interaction_history": list(session.interaction_history),
                    "segments_seen": session.segments_seen,
                }
                for stream_id, session in self.sessions.items()
            },
            "historical_hidden": self._historical_hidden,
            "buffer_hidden": list(self._buffer_hidden),
            "buffer_stream_ids": list(self._buffer_stream_ids),
            "buffer_requests": (
                [_request_state(request) for request in self._buffer_requests]
                if self._buffer_requests is not None
                else None
            ),
            "level_sum": self._level_sum,
            "level_count": self._level_count,
            "pending": [_request_state(request) for request in self.batcher.pending()],
        }

    def restore_state(self, state: Mapping[str, object]) -> None:
        """Load an :meth:`export_state` payload into this (fresh) service."""
        with self._score_lock, self._ingest_lock:
            self._restore_state_locked(state)

    def _restore_state_locked(self, state: Mapping[str, object]) -> None:
        if self.sessions or len(self.batcher):
            raise RuntimeError("restore_state requires a fresh service (no traffic yet)")
        for stream_id, payload in state["sessions"].items():
            session = self.session(stream_id)
            for row in payload["action_history"]:
                session.action_history.append(np.asarray(row, dtype=np.float64))
            for row in payload["interaction_history"]:
                session.interaction_history.append(np.asarray(row, dtype=np.float64))
            session.segments_seen = int(payload["segments_seen"])
        historical = state["historical_hidden"]
        self._historical_hidden = (
            np.asarray(historical, dtype=np.float64) if historical is not None else None
        )
        self._buffer_hidden = [np.asarray(row, dtype=np.float64) for row in state["buffer_hidden"]]
        self._buffer_stream_ids = [str(stream_id) for stream_id in state["buffer_stream_ids"]]
        buffered = state.get("buffer_requests")
        if self._buffer_requests is not None and buffered is not None:
            self._buffer_requests = [_request_from_state(payload) for payload in buffered]
        self._level_sum = float(state["level_sum"])
        self._level_count = int(state["level_count"])
        now = self._clock()
        for payload in state["pending"]:
            self.batcher.submit(_request_from_state(payload), now=now)


def _request_state(request: ScoreRequest) -> Dict[str, object]:
    """A :class:`ScoreRequest` as a plain field dict (checkpoint leaf)."""
    return {
        "stream_id": request.stream_id,
        "segment_index": request.segment_index,
        "action_history": request.action_history,
        "interaction_history": request.interaction_history,
        "action_target": request.action_target,
        "interaction_target": request.interaction_target,
        "interaction_level": request.interaction_level,
    }


def _request_from_state(state: Mapping[str, object]) -> ScoreRequest:
    """Inverse of :func:`_request_state`."""
    return ScoreRequest(
        stream_id=str(state["stream_id"]),
        segment_index=int(state["segment_index"]),
        action_history=np.asarray(state["action_history"], dtype=np.float64),
        interaction_history=np.asarray(state["interaction_history"], dtype=np.float64),
        action_target=np.asarray(state["action_target"], dtype=np.float64),
        interaction_target=np.asarray(state["interaction_target"], dtype=np.float64),
        interaction_level=float(state["interaction_level"]),
    )


def replay_streams(
    service: "ScoringService",
    streams: Mapping[str, StreamFeatures],
    flush: bool = True,
    *,
    clock: Optional[ManualClock] = None,
    interarrival_seconds: float = 0.0,
) -> List[StreamDetection]:
    """Drive ``service`` with many streams arriving concurrently.

    Segments of all streams are interleaved round-robin (segment 0 of every
    stream, then segment 1 of every stream, ...), which is how aligned live
    streams reach a real ingest tier.  Returns every detection produced, in
    scoring order.

    ``service`` may be a :class:`ScoringService` or anything sharing its
    ingest surface (e.g. the sharded runtime).  When a :class:`ManualClock`
    is supplied, simulated time advances by ``interarrival_seconds`` after
    each round-robin round and the service's deadline flushes run via
    ``poll()`` — this is how the deadline-bounded benchmarks replay at a
    controlled arrival rate.  The service must have been constructed with
    the *same* clock; otherwise its deadlines would silently keep running
    on real wall-clock time while the replay advances simulated time.
    """
    if clock is not None:
        shards = getattr(service, "shards", None) or [service]
        if any(getattr(shard, "_clock", None) is not clock for shard in shards):
            raise ValueError(
                "replay clock must be the clock the service was constructed with "
                "(pass clock=... to the service as well)"
            )
    detections: List[StreamDetection] = []
    longest = max((features.num_segments for features in streams.values()), default=0)
    for position in range(longest):
        for stream_id, features in streams.items():
            if position >= features.num_segments:
                continue
            # Feature pipelines may emit nan for segments with no audience
            # signal; map those to the explicit "unknown" opt-in instead of
            # tripping the ingest boundary's finite-value validation.
            level: Optional[float] = None
            if features.normalised_interaction.size > position:
                value = float(features.normalised_interaction[position])
                if np.isfinite(value):
                    level = value
            detections.extend(
                service.submit(
                    stream_id,
                    features.action[position],
                    features.interaction[position],
                    interaction_level=level,
                )
            )
        if clock is not None:
            clock.advance(interarrival_seconds)
            detections.extend(service.poll())
    if flush:
        detections.extend(service.flush())
    return detections
