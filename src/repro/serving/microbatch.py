"""Cross-stream micro-batching of scoring requests.

Serving many concurrent live streams one segment at a time wastes the fused
inference engine: a single ``(1, q, d)`` forward is dominated by fixed
per-call overhead, while a ``(64, q, d)`` forward costs barely more than a
``(8, q, d)`` one.  The :class:`MicroBatcher` therefore collects
:class:`ScoreRequest` objects from *any* number of streams into one FIFO
queue and releases them in batches of up to ``max_batch_size`` — the classic
micro-batching scheduler of neural serving systems, including the optional
wall-clock flush deadline (``max_delay_seconds``) that bounds tail latency
when fan-in is too low to fill batches (see
:class:`~repro.serving.service.ScoringService`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

import numpy as np

__all__ = ["QueueFull", "ScoreRequest", "MicroBatcher"]


class QueueFull(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit` when the queue bound is reached.

    Carries the bound so admission layers can surface it; catching this and
    shedding the request (rather than blocking the ingest thread) is the
    back-pressure contract of the bounded queue.
    """

    def __init__(self, max_pending: int) -> None:
        super().__init__(f"micro-batch queue is full ({max_pending} pending requests)")
        self.max_pending = max_pending


@dataclass(frozen=True)
class ScoreRequest:
    """One segment of one stream, ready to be scored.

    Attributes
    ----------
    stream_id:
        Identifier of the originating stream (routing key for the response).
    segment_index:
        Index of the predicted segment within its stream.
    action_history / interaction_history:
        ``(q, d1)`` / ``(q, d2)`` history windows feeding the CLSTM.
    action_target / interaction_target:
        True features of the incoming segment (the reconstruction targets).
    interaction_level:
        Normalised audience-interaction level of the incoming segment; the
        drift monitor buffers presumed-normal segments below a threshold of
        this quantity (Section IV-D).  ``nan`` disables drift tracking for
        the segment.
    """

    stream_id: str
    segment_index: int
    action_history: np.ndarray
    interaction_history: np.ndarray
    action_target: np.ndarray
    interaction_target: np.ndarray
    interaction_level: float = float("nan")


class MicroBatcher:
    """FIFO queue that coalesces requests from many streams into batches.

    Two flush conditions are supported: the count-based :meth:`ready` (a
    full batch is waiting) and, when ``max_delay_seconds`` is set, the
    wall-clock :meth:`expired` deadline — the oldest queued request has
    waited at least ``max_delay_seconds``.  The deadline bounds tail latency
    at low stream fan-in, where a full batch may take arbitrarily long to
    accumulate.  Time is supplied by the caller (``now``), so services can
    use a monotonic clock in production and a manual clock in tests.
    """

    def __init__(
        self,
        max_batch_size: int = 64,
        max_delay_seconds: Optional[float] = None,
        max_pending: Optional[int] = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if max_delay_seconds is not None and max_delay_seconds < 0:
            raise ValueError("max_delay_seconds must be non-negative when set")
        if max_pending is not None and max_pending < max_batch_size:
            raise ValueError("max_pending must be at least max_batch_size when set")
        self.max_batch_size = max_batch_size
        self.max_delay_seconds = max_delay_seconds
        self.max_pending = max_pending
        self._queue: Deque[ScoreRequest] = deque()
        self._arrivals: Deque[Optional[float]] = deque()
        self.submitted = 0
        self.batches_drained = 0

    def __len__(self) -> int:
        return len(self._queue)

    def submit(self, request: ScoreRequest, now: Optional[float] = None) -> None:
        """Enqueue one request (order of arrival is preserved).

        ``now`` stamps the arrival for deadline accounting; deadline-less
        callers can omit it.

        Raises :class:`QueueFull` when ``max_pending`` is set and already
        reached — the request is *not* enqueued; shed it or retry later.
        """
        if self.max_pending is not None and len(self._queue) >= self.max_pending:
            raise QueueFull(self.max_pending)
        self._queue.append(request)
        self._arrivals.append(now)
        self.submitted += 1

    def ready(self) -> bool:
        """Whether a full batch is waiting."""
        return len(self._queue) >= self.max_batch_size

    def oldest_arrival(self) -> Optional[float]:
        """Arrival stamp of the queue head (None when idle or unstamped)."""
        return self._arrivals[0] if self._arrivals else None

    def expired(self, now: float) -> bool:
        """Whether the head request has outlived the flush deadline."""
        if self.max_delay_seconds is None or not self._queue:
            return False
        oldest = self._arrivals[0]
        if oldest is None:
            return False
        return (now - oldest) >= self.max_delay_seconds

    def pending(self) -> List[ScoreRequest]:
        """The queued requests in arrival order, without draining them.

        The checkpoint path persists these so a restored service re-queues
        exactly the requests that were waiting when the checkpoint was taken
        (arrival stamps are re-issued at restore time).
        """
        return list(self._queue)

    def drain(self) -> List[ScoreRequest]:
        """Pop up to ``max_batch_size`` requests (empty list when idle)."""
        batch: List[ScoreRequest] = []
        while self._queue and len(batch) < self.max_batch_size:
            batch.append(self._queue.popleft())
            self._arrivals.popleft()
        if batch:
            self.batches_drained += 1
        return batch

    @staticmethod
    def assemble(
        requests: List[ScoreRequest],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Stack a request list into the arrays the batched scorer consumes.

        Returns ``(action_sequences, interaction_sequences, action_targets,
        interaction_targets, segment_indices)`` with leading dimension
        ``len(requests)``.
        """
        if not requests:
            raise ValueError("cannot assemble an empty batch")
        return (
            np.stack([r.action_history for r in requests], axis=0),
            np.stack([r.interaction_history for r in requests], axis=0),
            np.stack([r.action_target for r in requests], axis=0),
            np.stack([r.interaction_target for r in requests], axis=0),
            np.array([r.segment_index for r in requests], dtype=np.int64),
        )
