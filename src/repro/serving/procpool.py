"""Process-parallel scoring over shared-memory model snapshots.

The thread :class:`~repro.serving.executor.ParallelExecutor` tops out at the
GIL: NumPy releases it inside the fused GEMMs, but everything around them —
routing, micro-batch assembly, ADOS filtering, drift bookkeeping — still
serialises, so adding threads past a handful buys little on mixed workloads.
This module scales scoring past a single interpreter while keeping every
piece of *state* (sessions, routes, drift monitors, checkpoints) in the
parent process:

* **Shared-memory snapshot plane.**  Every published
  :class:`~repro.serving.registry.ModelSnapshot` is immutable after its
  copy-on-write publish, so its flat ``float64`` parameter buffers can be
  placed in :mod:`multiprocessing.shared_memory` once and mapped zero-copy
  (``np.frombuffer``) by any number of workers — no per-request weight
  pickling, no per-worker RSS for model parameters.  A segment holds the
  calibrated threshold ``T_a`` (one float header) followed by the parameters
  in ``named_parameters`` order.
* **Cross-process version pointer.**  A small shared *board* segment holds
  the latest exported version per registry slot — the cross-process
  equivalent of the :class:`~repro.serving.registry.RegistryHandle` pointer.
  The parent advances it under the plane lock when it exports a snapshot;
  workers read it to know which versions are current and report it in their
  stats.
* **Persistent shard workers.**  Each worker process rebuilds the fused cell
  **once per version** (attach segment → rebind parameters to the shared
  views → prewarm the fused caches → bind a detector to the shared
  threshold) and then scores micro-batches in its own interpreter.  The
  parent assembles every batch, pins the snapshot through its own handle
  (so ``swaps_observed`` and version attribution behave exactly as in
  serial), and ships only the batch arrays + the pinned version over a pipe.

Determinism: the worker executes the *same* ``predict_full`` →
``score_predictions`` pipeline on bit-identical ``float64`` weights, on the
same machine and BLAS, so ``ProcessParallelExecutor(workers=1)`` is
bitwise-identical to :class:`~repro.serving.executor.SerialExecutor` —
including across a checkpoint/restore cycle, because all durable state lives
in the parent.

Cleanup: shared segments are owned by the parent.  They are unlinked by
:meth:`ProcessParallelExecutor.close` (reached via ``Runtime.close()``), by
a ``weakref.finalize`` guard when an executor is garbage-collected unclosed,
and by a module ``atexit`` hook covering abnormal interpreter exits — a
crashed run cannot leak ``/dev/shm`` segments.  Workers attach with the
resource tracker disabled, so a dying worker can never unlink a segment the
parent still serves from (a stdlib footgun before Python 3.13).
"""

from __future__ import annotations

import atexit
import contextlib
import functools
import itertools
import os
import threading
import traceback
import weakref
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

import multiprocessing

import numpy as np

from .executor import default_workers
from .service import BatchScores

__all__ = ["WorkerCrashed", "ProcessParallelExecutor"]

T = TypeVar("T")

_BOARD_SLOTS = 64
"""Capacity of the version board: distinct registries one executor can serve."""

_STALE_RETRIES = 4
"""Attach attempts per batch before a missing segment becomes an error."""

_PREFIX_COUNTER = itertools.count()


class WorkerCrashed(RuntimeError):
    """A scoring worker process died mid-conversation (pipe broke).

    Raised by the parent on the next request routed to the dead worker.  The
    executor's shared segments stay owned (and are unlinked) by the parent,
    so a crashed worker never leaks ``/dev/shm`` state.
    """


# --------------------------------------------------------------------------- #
# Shared-memory helpers (resource-tracker discipline)
# --------------------------------------------------------------------------- #
# Reentrant: a garbage collection inside SharedMemory.__init__ (while the
# lock is held) can run a dead executor's finalizer, whose _unlink_quiet
# re-enters _tracker_silenced on the same thread.  Nesting is sound — the
# inner context saves and restores the outer context's no-ops, the outer
# one restores the real functions.
_TRACKER_LOCK = threading.RLock()


@contextlib.contextmanager
def _tracker_silenced():
    """Run a ``SharedMemory`` create/attach/unlink with no tracker traffic.

    Before Python 3.13 *every* ``SharedMemory`` construction — including a
    plain attach — registers the segment with the process's resource
    tracker, which unlinks it when that process exits: a worker attaching a
    snapshot would destroy it for everyone on worker exit.  Unregistering
    after the fact is not enough either — the tracker's cache is one shared
    set, so register/unregister pairs from the parent and a forked worker
    interleave and the tracker logs spurious ``KeyError`` tracebacks.  The
    executor owns cleanup explicitly (``close()`` + finalizer + atexit), so
    tracker registration is suppressed at the source for our segments; the
    lock keeps the patch atomic across parent threads.
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - stdlib always has it on Linux
        yield
        return
    with _TRACKER_LOCK:
        register, unregister = resource_tracker.register, resource_tracker.unregister
        resource_tracker.register = lambda *args, **kwargs: None
        resource_tracker.unregister = lambda *args, **kwargs: None
        try:
            yield
        finally:
            resource_tracker.register = register
            resource_tracker.unregister = unregister


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting unlink responsibility."""
    with _tracker_silenced():
        return shared_memory.SharedMemory(name=name)


def _create_segment(name: str, size: int) -> shared_memory.SharedMemory:
    """Create a named segment, reclaiming a stale leftover of the same name."""
    with _tracker_silenced():
        try:
            return shared_memory.SharedMemory(name=name, create=True, size=size)
        except FileExistsError:
            # A previous hard-killed run with the same pid left its segment
            # behind; the name scheme includes the pid, so it cannot belong
            # to a live executor of this process.
            leftover = shared_memory.SharedMemory(name=name)
            leftover.close()
            leftover.unlink()
            return shared_memory.SharedMemory(name=name, create=True, size=size)


def _close_quiet(segment: shared_memory.SharedMemory) -> None:
    try:
        segment.close()
    except BufferError:  # a numpy view still references the mapping
        pass
    except Exception:  # pragma: no cover - defensive
        pass


def _unlink_quiet(segment: shared_memory.SharedMemory) -> None:
    _close_quiet(segment)
    try:
        # unlink() also sends an unregister (we never registered) — silence.
        with _tracker_silenced():
            segment.unlink()
    except FileNotFoundError:
        pass
    except Exception:  # pragma: no cover - defensive
        pass


def _segment_name(prefix: str, slot: int, version: int) -> str:
    return f"{prefix}s{slot}v{version}"


# --------------------------------------------------------------------------- #
# Parent-side resource registry (close() + finalizer + atexit all converge)
# --------------------------------------------------------------------------- #
class _ExecutorResources:
    """Everything one executor must release, separated from the executor.

    ``weakref.finalize`` and the module atexit hook need a cleanup target
    that does *not* reference the executor (or the finalizer would keep it
    alive forever), so segments, worker processes and pipe ends live here.
    """

    __slots__ = ("segments", "processes", "conns", "lock", "released", "__weakref__")

    def __init__(self) -> None:
        self.segments: Dict[str, shared_memory.SharedMemory] = {}
        self.processes: list = []
        self.conns: list = []
        self.lock = threading.Lock()
        self.released = False


def _release_resources(resources: _ExecutorResources) -> None:
    """Tear one executor's processes and shared segments down (idempotent).

    Order matters: pipes close first (workers blocked in ``recv`` exit),
    surviving processes are terminated *before* any segment is unlinked (so
    a worker never observes its mapped file vanishing mid-batch), and
    unlinking runs last.  Safe to call from ``close()``, a GC finalizer and
    the atexit hook — whichever fires first wins.
    """
    with resources.lock:
        if resources.released:
            return
        resources.released = True
        segments = list(resources.segments.values())
        processes = list(resources.processes)
        conns = list(resources.conns)
        resources.segments.clear()
        resources.processes.clear()
        resources.conns.clear()
    for conn in conns:
        try:
            conn.close()
        except Exception:  # pragma: no cover - already broken pipe
            pass
    for process in processes:
        try:
            if process.is_alive():
                process.terminate()
            process.join(timeout=2.0)
        except Exception:  # pragma: no cover - defensive
            pass
    for segment in segments:
        _unlink_quiet(segment)


_LIVE_RESOURCES: "weakref.WeakSet[_ExecutorResources]" = weakref.WeakSet()


@atexit.register
def _release_all_live_resources() -> None:  # pragma: no cover - process exit
    for resources in list(_LIVE_RESOURCES):
        _release_resources(resources)


# --------------------------------------------------------------------------- #
# The snapshot plane (parent side)
# --------------------------------------------------------------------------- #
class _SnapshotPlane:
    """Exports immutable snapshots into named shared segments.

    One plane per executor.  Each distinct :class:`ModelRegistry` gets a
    *slot*; each published version of that registry's model gets one segment
    ``{prefix}s{slot}v{version}`` holding ``[T_a, *flat_params]`` as
    ``float64``.  The two most recent versions per slot stay exported (a
    worker mid-rebuild may still want version N-1); older segments are
    unlinked eagerly.  The board segment mirrors the latest version per slot
    as an ``int64`` array — the cross-process registry version pointer.
    """

    def __init__(
        self,
        prefix: str,
        resources: _ExecutorResources,
        board: shared_memory.SharedMemory,
    ) -> None:
        self._prefix = prefix
        self._resources = resources
        self._board = board
        self._lock = threading.Lock()
        self._slots: Dict[int, int] = {}  # id(registry) -> slot
        self._registries: list = []  # keeps ids stable while the plane lives
        self._exported: Dict[int, Dict[int, Tuple[str, int]]] = {}

    def slot_for(self, registry) -> int:
        """The (stable, first-come) board slot of ``registry``."""
        with self._lock:
            slot = self._slots.get(id(registry))
            if slot is None:
                if len(self._registries) >= _BOARD_SLOTS:
                    raise RuntimeError(
                        f"process executor supports at most {_BOARD_SLOTS} "
                        f"distinct registries"
                    )
                slot = len(self._registries)
                self._slots[id(registry)] = slot
                self._registries.append(registry)
                self._exported[slot] = {}
            return slot

    def ensure_exported(self, slot: int, snapshot) -> None:
        """Export ``snapshot`` into ``slot`` if this version is not yet out."""
        with self._lock:
            if snapshot.version in self._exported[slot]:
                return
            self._export_locked(slot, snapshot)

    def reexport(self, slot: int, snapshot) -> None:
        """Re-export after a worker reported the segment missing (stale)."""
        with self._lock:
            entry = self._exported[slot].pop(snapshot.version, None)
            if entry is not None:
                segment = self._resources.segments.pop(entry[0], None)
                if segment is not None:
                    _unlink_quiet(segment)
            self._export_locked(slot, snapshot)

    def segment_nbytes(self, slot: int, version: int) -> int:
        with self._lock:
            entry = self._exported.get(slot, {}).get(version)
            return entry[1] if entry is not None else 0

    def _export_locked(self, slot: int, snapshot) -> None:
        parts = [np.array([float(snapshot.threshold)], dtype=np.float64)]
        parts.extend(
            np.ascontiguousarray(parameter.data, dtype=np.float64).ravel()
            for _, parameter in snapshot.model.named_parameters()
        )
        flat = np.concatenate(parts)
        name = _segment_name(self._prefix, slot, snapshot.version)
        segment = _create_segment(name, flat.nbytes)
        view = np.frombuffer(segment.buf, dtype=np.float64)
        view[:] = flat
        del view  # the mapping must hold no exported views when closed
        self._resources.segments[name] = segment
        self._exported[slot][snapshot.version] = (name, flat.nbytes)
        board = np.frombuffer(self._board.buf, dtype=np.int64)
        board[slot] = snapshot.version
        del board
        # Keep the two newest versions attached workers may still hold; the
        # parent is the sole unlink owner, so pruning here cannot race a
        # worker's own cleanup.
        versions = sorted(self._exported[slot])
        for stale in versions[:-2]:
            stale_name, _ = self._exported[slot].pop(stale)
            segment = self._resources.segments.pop(stale_name, None)
            if segment is not None:
                _unlink_quiet(segment)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            exported = {
                slot: dict(entries) for slot, entries in self._exported.items()
            }
        segment_count = sum(len(entries) for entries in exported.values())
        segment_bytes = sum(
            nbytes for entries in exported.values() for _, nbytes in entries.values()
        )
        board = np.frombuffer(self._board.buf, dtype=np.int64)
        latest = {
            str(slot): int(board[slot]) for slot in exported if board[slot] > 0
        }
        del board
        return {
            "segments": segment_count,
            "segment_bytes": int(segment_bytes),
            "latest_versions": latest,
        }


# --------------------------------------------------------------------------- #
# Worker process
# --------------------------------------------------------------------------- #
def _build_slot(prefix: str, slot: int, version: int, spec: Dict[str, object]):
    """Rebuild one slot's model/detector over the shared segment (worker side).

    Raises ``FileNotFoundError`` when the segment is gone — the caller turns
    that into a ``("stale", version)`` reply and the parent re-exports.
    """
    # Imports live here (not module top) so a spawn-started worker pays them
    # once and a fork-started worker inherits them for free either way.
    from ..core.clstm import CLSTM
    from ..core.detector import AnomalyDetector
    from ..utils.config import DetectionConfig, ModelConfig

    segment = _attach(_segment_name(prefix, slot, version))
    flat = np.frombuffer(segment.buf, dtype=np.float64)
    threshold = float(flat[0])
    model = CLSTM.from_config(
        ModelConfig.from_dict(spec["model"]), coupling=spec["coupling"], seed=0
    )
    offset = 1
    for (expected_name, shape), (name, parameter) in zip(
        spec["params"], model.named_parameters()
    ):
        if expected_name != name:
            raise RuntimeError(
                f"parameter order mismatch: spec says {expected_name!r}, "
                f"model yields {name!r}"
            )
        size = int(np.prod(shape))
        view = flat[offset : offset + size].reshape(tuple(shape))
        # Snapshots are immutable by contract; freeze the view so any code
        # path that would write through a parameter fails loudly instead of
        # corrupting every process mapping this segment.
        view.flags.writeable = False
        parameter.data = view
        offset += size
    if offset != flat.size:
        raise RuntimeError(
            f"segment size mismatch: consumed {offset} of {flat.size} floats"
        )
    # Rebind BEFORE prewarming: the fused caches copy the (shared) weights
    # into their stacked layout and are keyed to the live parameter arrays.
    model.prewarm_fused()
    detector = AnomalyDetector(
        model, DetectionConfig.from_dict(spec["detection"]), threshold=threshold
    )
    return (version, segment, model, detector)


def _worker_main(conn, prefix: str, board_name: str) -> None:
    """Persistent scoring worker: rebuild once per version, score batches."""
    try:
        board = _attach(board_name)
    except FileNotFoundError:  # parent already tearing down
        board = None
    specs: Dict[int, Dict[str, object]] = {}
    cache: Dict[int, tuple] = {}  # slot -> (version, segment, model, detector)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            try:
                if kind == "close":
                    conn.send(("ok",))
                    break
                if kind == "ping":
                    conn.send(("ok",))
                    continue
                if kind == "spec":
                    _, slot, spec = message
                    specs[slot] = spec
                    conn.send(("ok",))
                    continue
                if kind == "stats":
                    payload = {
                        "slots": {
                            str(slot): int(entry[0]) for slot, entry in cache.items()
                        },
                        "zero_copy_bytes": int(
                            sum(entry[1].size for entry in cache.values())
                        ),
                    }
                    if board is not None:
                        versions = np.frombuffer(board.buf, dtype=np.int64)
                        payload["board"] = [int(v) for v in versions if v > 0]
                        del versions
                    conn.send(("ok", payload))
                    continue
                if kind == "score":
                    (
                        _,
                        slot,
                        version,
                        action_sequences,
                        interaction_sequences,
                        action_targets,
                        interaction_targets,
                        segment_indices,
                    ) = message
                    current = cache.get(slot)
                    if current is None or current[0] != version:
                        try:
                            fresh = _build_slot(prefix, slot, version, specs[slot])
                        except FileNotFoundError:
                            conn.send(("stale", version))
                            continue
                        cache[slot] = fresh
                        if current is not None:
                            old_segment = current[1]
                            del current  # drop the old model so its views die
                            _close_quiet(old_segment)
                        current = fresh
                    _, _, model, detector = current
                    predicted_action, predicted_interaction, hidden, _ = (
                        model.predict_full(action_sequences, interaction_sequences)
                    )
                    result = detector.score_predictions(
                        segment_indices,
                        action_targets,
                        interaction_targets,
                        predicted_action,
                        predicted_interaction,
                    )
                    conn.send(
                        (
                            "ok",
                            result.scores,
                            result.action_errors,
                            result.interaction_errors,
                            result.is_anomaly,
                            float(result.threshold),
                            hidden,
                        )
                    )
                    continue
                conn.send(("error", f"unknown message kind {kind!r}"))
            except BaseException:
                try:
                    conn.send(("error", traceback.format_exc()))
                except Exception:
                    break
    finally:
        try:
            conn.close()
        except Exception:
            pass
        for entry in cache.values():
            _close_quiet(entry[1])
        if board is not None:
            _close_quiet(board)


class _WorkerHandle:
    """Parent-side endpoint of one worker: pipe, per-worker RPC lock."""

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.lock = threading.Lock()
        self.specs_sent: set = set()
        self.attached: Dict[int, Tuple[int, int]] = {}  # slot -> (version, nbytes)

    def request_locked(self, message: tuple) -> tuple:
        """One send/recv round trip; caller must hold :attr:`lock`."""
        try:
            self.conn.send(message)
            return self.conn.recv()
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as error:
            raise WorkerCrashed(
                f"scoring worker (pid {self.process.pid}) is gone: {error!r}"
            ) from error

    def request(self, message: tuple) -> tuple:
        with self.lock:
            return self.request_locked(message)


# --------------------------------------------------------------------------- #
# The executor
# --------------------------------------------------------------------------- #
class ProcessParallelExecutor:
    """Fan shard scoring out to persistent worker *processes*.

    Drop-in for :class:`~repro.serving.executor.ParallelExecutor` on the
    sharded service's executor seam — :meth:`map` has identical semantics
    (thread fan-out of shard tasks, results in submission order) — plus a
    :meth:`bind` hook the service calls after building its shards: binding
    spawns the worker processes and installs a ``remote_compute`` hook on
    every shard, so the compute kernel of
    :meth:`~repro.serving.service.ScoringService._score_requests` (fused
    forward + REIA scoring) runs in a worker interpreter while *all* state
    transitions stay in the parent.

    Shard ``i`` is served by worker ``i % workers``; each worker's RPCs are
    serialised by a per-worker lock, so two shards sharing a worker never
    interleave messages.  ``workers=1`` is bitwise-identical to
    :class:`~repro.serving.executor.SerialExecutor` (same assembly, same
    ``float64`` weights via shared memory, same kernels).

    Must be released with :meth:`close` — reached through
    ``ShardedScoringService.close()`` / ``Runtime.close()`` — which tears
    the workers down and unlinks every shared segment; a finalizer and a
    module atexit hook cover abnormal exits.
    """

    serial = False

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if start_method is not None and start_method not in (
            "fork",
            "spawn",
            "forkserver",
        ):
            raise ValueError(
                f"start_method must be 'fork', 'spawn' or 'forkserver', "
                f"got {start_method!r}"
            )
        self.workers = int(workers) if workers is not None else default_workers()
        available = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in available else available[0]
        elif start_method not in available:
            raise ValueError(
                f"start method {start_method!r} is not supported on this "
                f"platform (available: {available})"
            )
        self.start_method = start_method
        self._ctx = multiprocessing.get_context(start_method)
        self._prefix = f"reproshm{os.getpid()}x{next(_PREFIX_COUNTER)}"
        resources = _ExecutorResources()
        self._resources = resources
        _LIVE_RESOURCES.add(resources)
        self._finalizer = weakref.finalize(self, _release_resources, resources)
        board_name = self._prefix + "board"
        board = _create_segment(board_name, 8 * _BOARD_SLOTS)
        np.frombuffer(board.buf, dtype=np.int64)[:] = 0
        resources.segments[board_name] = board
        self._board = board
        self._plane = _SnapshotPlane(self._prefix, resources, board)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-shard"
        )
        self._handles: List[_WorkerHandle] = []
        self._handles_lock = threading.Lock()
        self._closed = False

    # -------------------------------------------------------------- #
    # Executor surface (shared with Serial/ParallelExecutor)
    # -------------------------------------------------------------- #
    def map(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        """Execute shard tasks on the thread pool; results in task order.

        The tasks themselves (``try_score_ready`` / ``poll`` closures) run in
        the parent — they hold shard locks and drive ingest/drift state — and
        reach the worker processes only through each shard's
        ``remote_compute`` hook when a batch actually needs scoring.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        tasks = list(tasks)
        if not tasks:
            return []
        if len(tasks) == 1:
            return [tasks[0]()]
        futures = [self._pool.submit(task) for task in tasks]
        return [future.result() for future in futures]

    # -------------------------------------------------------------- #
    # Service binding
    # -------------------------------------------------------------- #
    def bind(self, service) -> None:
        """Spawn workers and hook every shard's compute onto them.

        Called by :class:`~repro.serving.sharding.ShardedScoringService`
        right after its shards are built.  Spawns ``min(workers, shards)``
        persistent processes eagerly (never fewer than one), so the first
        batch pays no fork latency.
        """
        shards = list(service.shards)
        target = max(1, min(self.workers, len(shards)))
        with self._handles_lock:
            while len(self._handles) < target:
                self._spawn_worker_locked()
        for index, shard in enumerate(shards):
            self._install(shard, index)

    def notify_shard_added(self, shard, index: int) -> None:
        """Hook a shard created after binding (rebalancer splits)."""
        with self._handles_lock:
            if len(self._handles) < self.workers:
                self._spawn_worker_locked()
        self._install(shard, index)

    def _install(self, shard, index: int) -> None:
        shard.remote_compute = functools.partial(
            self._remote_compute, index, shard.registry
        )

    def _spawn_worker_locked(self) -> None:
        if self._closed:
            raise RuntimeError("executor is closed")
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._prefix, self._prefix + "board"),
            name=f"repro-procpool-{len(self._handles)}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._resources.processes.append(process)
        self._resources.conns.append(parent_conn)
        self._handles.append(_WorkerHandle(process, parent_conn))

    # -------------------------------------------------------------- #
    # The remote compute kernel
    # -------------------------------------------------------------- #
    def _remote_compute(
        self,
        shard_index: int,
        registry,
        snapshot,
        action_sequences: np.ndarray,
        interaction_sequences: np.ndarray,
        action_targets: np.ndarray,
        interaction_targets: np.ndarray,
        segment_indices: np.ndarray,
    ) -> BatchScores:
        """Score one assembled batch in the worker owning ``shard_index``.

        ``snapshot`` is the version the parent's handle pinned for this
        batch; the message carries it explicitly so the worker rebuilds and
        scores exactly that version — the board is advisory, the pin is
        authoritative, matching serial semantics where a publish landing
        mid-batch is only seen by the next pin.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        slot = self._plane.slot_for(registry)
        self._plane.ensure_exported(slot, snapshot)
        with self._handles_lock:
            if not self._handles:
                self._spawn_worker_locked()
            handle = self._handles[shard_index % len(self._handles)]
        with handle.lock:
            if slot not in handle.specs_sent:
                spec = {
                    "model": snapshot.model.model_config.to_dict(),
                    "coupling": snapshot.model.coupling,
                    "detection": registry.detection_config.to_dict(),
                    "params": [
                        (name, tuple(int(d) for d in parameter.data.shape))
                        for name, parameter in snapshot.model.named_parameters()
                    ],
                }
                reply = handle.request_locked(("spec", slot, spec))
                if reply[0] != "ok":
                    raise RuntimeError(f"worker rejected slot spec: {reply!r}")
                handle.specs_sent.add(slot)
            reply = ("stale", snapshot.version)
            for _ in range(_STALE_RETRIES):
                reply = handle.request_locked(
                    (
                        "score",
                        slot,
                        snapshot.version,
                        action_sequences,
                        interaction_sequences,
                        action_targets,
                        interaction_targets,
                        segment_indices,
                    )
                )
                if reply[0] != "stale":
                    break
                self._plane.reexport(slot, snapshot)
            if reply[0] == "stale":
                raise RuntimeError(
                    f"worker could not attach snapshot v{snapshot.version} "
                    f"after {_STALE_RETRIES} re-exports"
                )
            if reply[0] == "error":
                raise RuntimeError(f"process worker scoring failed:\n{reply[1]}")
            handle.attached[slot] = (
                snapshot.version,
                self._plane.segment_nbytes(slot, snapshot.version),
            )
        _, scores, action_errors, interaction_errors, is_anomaly, threshold, hidden = reply
        return BatchScores(
            scores=scores,
            action_errors=action_errors,
            interaction_errors=interaction_errors,
            is_anomaly=is_anomaly,
            threshold=threshold,
            hidden=hidden,
        )

    # -------------------------------------------------------------- #
    # Introspection
    # -------------------------------------------------------------- #
    @property
    def segment_prefix(self) -> str:
        """Name prefix of every shared segment this executor owns."""
        return self._prefix

    def stats(self) -> Dict[str, object]:
        """JSON-safe snapshot: segments, zero-copy bytes, worker liveness."""
        plane = self._plane.stats()
        with self._handles_lock:
            handles = list(self._handles)
        workers = []
        for index, handle in enumerate(handles):
            with handle.lock:
                attached = dict(handle.attached)
            workers.append(
                {
                    "index": index,
                    "pid": handle.process.pid,
                    "alive": handle.process.is_alive(),
                    # Bytes this worker maps zero-copy: shared pages, not
                    # per-worker RSS — the whole point of the snapshot plane.
                    "zero_copy_bytes": int(
                        sum(nbytes for _, nbytes in attached.values())
                    ),
                    "slots": {
                        str(slot): int(version)
                        for slot, (version, _) in attached.items()
                    },
                }
            )
        return {
            "mode": "process",
            "workers": self.workers,
            "start_method": self.start_method,
            "segment_prefix": self._prefix,
            "segments": plane["segments"],
            "segment_bytes": plane["segment_bytes"],
            "latest_versions": plane["latest_versions"],
            "worker_processes": workers,
        }

    # -------------------------------------------------------------- #
    # Lifecycle
    # -------------------------------------------------------------- #
    def close(self) -> None:
        """Stop workers, unlink every shared segment (idempotent).

        Workers get a graceful ``close`` first (they release their mappings
        and exit); anything still alive is terminated by the resource
        release, which then unlinks all segments — after ``close()`` returns
        there is no trace of this executor in ``/dev/shm``.
        """
        if self._closed:
            return
        self._closed = True
        with self._handles_lock:
            handles = list(self._handles)
        for handle in handles:
            with handle.lock:
                try:
                    handle.conn.send(("close",))
                    handle.conn.recv()
                except Exception:
                    pass
        for handle in handles:
            try:
                handle.process.join(timeout=5.0)
            except Exception:  # pragma: no cover - defensive
                pass
        self._pool.shutdown(wait=True)
        self._finalizer()
        _LIVE_RESOURCES.discard(self._resources)

    def __enter__(self) -> "ProcessParallelExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"ProcessParallelExecutor(workers={self.workers}, "
            f"start_method={self.start_method!r})"
        )
