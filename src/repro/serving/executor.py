"""Thread-parallel execution of the serving runtime.

Until now the online loop (score → drift trigger → incremental retrain → hot
swap) ran on the caller's thread: shards of a
:class:`~repro.serving.sharding.ShardedScoringService` scored one after the
other, and a retrain stalled every stream the service was feeding.  The
fused forwards are BLAS-bound GEMM chains, and NumPy releases the GIL inside
them — so shard batches of *different* shards can genuinely overlap on a
worker-thread pool, and a retrain can run off the scoring path entirely.
This module provides both halves:

* :class:`SerialExecutor` / :class:`ParallelExecutor` — the shard-work
  execution strategies.  The serial executor runs tasks in-line in shard
  index order and is bit-for-bit identical to the pre-executor code path.
  The parallel executor fans tasks out to a persistent worker pool and
  gathers results **in submission order**, so the merged detection stream is
  deterministic by shard index regardless of which worker finishes first.
  ``ParallelExecutor(workers=1)`` executes the same task sequence as the
  serial executor on a single worker thread and is therefore also
  bitwise-identical to it.
* :class:`BackgroundUpdatePlane` — a decorator around
  :class:`~repro.serving.maintenance.UpdatePlane` that moves the retrain +
  merge + re-calibrate + publish transaction onto a dedicated maintenance
  thread.  The scoring path only enqueues the drained sample buffer and
  returns; scoring continues against the snapshot each batch pinned, and the
  publish is an atomic registry swap (under the registry lock) that readers
  observe at their next micro-batch boundary.  ``quiesce()`` blocks until
  every queued retrain has landed — the checkpoint path calls it so a
  checkpoint never races a half-published version.

Determinism contract
--------------------
With one ingest thread, a serial executor — or a parallel executor with
``workers=1`` and synchronous updates — is fully deterministic and
bitwise-reproducible.  With ``workers > 1`` the *per-stream* detection
sequences are still exact (each shard's batches are scored sequentially
under its scoring lock), but when shards share a registry the interleaving
of concurrent publishes, and therefore version timelines, may vary from run
to run.  Terminal drains (:meth:`ShardedScoringService.flush` /
:meth:`~repro.serving.sharding.ShardedScoringService.drain`) always run
shards serially in index order for this reason.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Deque, List, Optional, Sequence, TypeVar, Union

from ..utils.config import ExecutorConfig, TrainingConfig, UpdateConfig
from .maintenance import UpdatePlane, UpdateReport
from .microbatch import ScoreRequest
from .service import UpdateTrigger

__all__ = [
    "EXECUTOR_ENV_VAR",
    "SerialExecutor",
    "ParallelExecutor",
    "BackgroundUpdatePlane",
    "build_executor",
    "default_workers",
]

T = TypeVar("T")

EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"
"""Environment variable consulted by ``ExecutorConfig(mode="auto")``.

Set to ``serial``, ``parallel`` or ``process``; CI runs the fast test-suite
once with ``REPRO_EXECUTOR=parallel`` and once with
``REPRO_EXECUTOR=process`` so every concurrency path gates every PR."""

_DEFAULT_WORKER_CAP = 8


def default_workers() -> int:
    """Pool size used when ``ExecutorConfig.workers`` is unset.

    One worker per *available* CPU, capped — shard scoring is BLAS-bound, so
    threads past the physical core count only add scheduling noise.

    Availability comes from the process's CPU affinity mask
    (``os.sched_getaffinity``), not ``os.cpu_count()``: under a cgroup cpuset
    or an explicit affinity mask — the container deployment this runtime
    targets — ``cpu_count`` reports the *host's* cores and the pool would
    oversubscribe the handful actually schedulable.  Platforms without
    affinity support (macOS, Windows) fall back to the CPU count.
    """
    try:
        available = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - platform fallback
        available = os.cpu_count() or 1
    return max(1, min(_DEFAULT_WORKER_CAP, available))


class SerialExecutor:
    """Run shard tasks in-line on the calling thread, in order.

    This is the default strategy and the reference semantics: it executes
    exactly the statements the pre-executor service ran, in the same order,
    on the same thread — bit-for-bit identical results, zero overhead.
    """

    serial = True
    workers = 1

    def map(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        """Execute ``tasks`` sequentially; results in task order."""
        return [task() for task in tasks]

    def close(self) -> None:
        """Nothing to release."""

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return "SerialExecutor()"


class ParallelExecutor:
    """Fan shard tasks out to a persistent worker-thread pool.

    One fused forward per shard is in flight at a time (the service
    dispatches at most one scoring task per shard, and each task holds its
    shard's scoring lock), so ``workers`` bounds how many *shards* score
    concurrently.  :meth:`map` blocks until every dispatched task finished
    and returns results in submission order — the caller's merge is
    deterministic by shard index no matter which worker finishes first.

    The pool is lazy (threads spawn on first use) and must be released with
    :meth:`close` (the sharded service and the runtime facade do this in
    their own ``close``).
    """

    serial = False

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = int(workers) if workers is not None else default_workers()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-shard"
        )
        self._closed = False

    def map(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        """Execute ``tasks`` on the pool; block; results in task order.

        A single task is run on the calling thread directly — the common
        steady-state case (one shard's batch filled) pays no pool hop.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        tasks = list(tasks)
        if not tasks:
            return []
        if len(tasks) == 1:
            return [tasks[0]()]
        futures = [self._pool.submit(task) for task in tasks]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Shut the pool down (idempotent); waits for in-flight tasks."""
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"ParallelExecutor(workers={self.workers})"


def build_executor(
    config: Optional[ExecutorConfig] = None,
) -> Union[SerialExecutor, ParallelExecutor]:
    """Construct the executor an :class:`ExecutorConfig` describes.

    ``mode="auto"`` resolves through the :data:`EXECUTOR_ENV_VAR` environment
    variable (unset → serial), so a deployment JSON can leave the execution
    strategy to the machine it lands on and CI can flip the whole suite to
    the parallel or process path without touching any test.  ``"process"``
    builds a :class:`~repro.serving.procpool.ProcessParallelExecutor`
    scoring shard batches in worker interpreters over shared-memory
    snapshots.
    """
    config = config if config is not None else ExecutorConfig()
    mode = config.mode
    if mode == "auto":
        env = os.environ.get(EXECUTOR_ENV_VAR, "").strip().lower()
        if env and env not in ("serial", "parallel", "process"):
            raise ValueError(
                f"{EXECUTOR_ENV_VAR} must be 'serial', 'parallel' or 'process', "
                f"got {env!r}"
            )
        mode = env or "serial"
    if mode == "serial":
        return SerialExecutor()
    if mode == "process":
        # Imported lazily: procpool imports default_workers from this module.
        from .procpool import ProcessParallelExecutor

        return ProcessParallelExecutor(
            workers=config.workers, start_method=config.start_method
        )
    return ParallelExecutor(workers=config.workers)


class BackgroundUpdatePlane:
    """Run a wrapped :class:`UpdatePlane`'s retrains on a maintenance thread.

    The synchronous plane executes its whole transaction (train on the
    drained buffer → merge → re-calibrate ``T_a`` → publish) inside the
    scoring path, stalling every stream of the triggering shard.  This
    decorator accepts the same :meth:`handle_trigger` call but only enqueues
    the job: a single daemon maintenance thread dequeues jobs FIFO and runs
    the inner plane's transaction off the scoring path.  While the retrain
    runs, scoring continues against whatever snapshot each micro-batch pins;
    the publish is an atomic registry swap observed at the next batch's pin.

    One maintenance thread per plane keeps the version lineage coherent:
    jobs from shards sharing this plane's registry are serialised FIFO, and
    ``updates_performed`` (the retrain RNG seed) advances exactly as the
    synchronous plane's would — only the *timing* of the swap moves.

    Failures of a background retrain are captured and re-raised from the
    next :meth:`quiesce`, :meth:`pause` or :meth:`close`, so a crashing
    update cannot disappear silently just because no caller was waiting on
    it.

    The checkpoint path uses :meth:`pause` / :meth:`pending_jobs` /
    :meth:`resume` instead of :meth:`quiesce`: pausing waits only for the
    *in-flight* retrain, then the frozen queue of not-yet-started jobs is
    persisted with the checkpoint and replayed on restore — a checkpoint
    neither executes every queued retrain up front nor loses the queue when
    the process exits.

    The wrapper exposes the inner plane's read surface (``registry``,
    ``reports``, ``updates_performed``, ``total_update_seconds``,
    ``restore_update_count``), so services, checkpoints and dashboards treat
    both planes interchangeably.
    """

    def __init__(self, plane: UpdatePlane) -> None:
        self.plane = plane
        self._state = threading.Condition()
        self._queue: Deque[tuple] = deque()
        self._active: Optional[tuple] = None
        self._paused = 0  # pause() nesting depth
        self._failures: List[BaseException] = []
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="repro-update-plane", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------ #
    # Pass-through read surface (same duck type as UpdatePlane)
    # ------------------------------------------------------------------ #
    @property
    def registry(self):
        return self.plane.registry

    @property
    def update_config(self) -> UpdateConfig:
        return self.plane.update_config

    @property
    def training_config(self) -> TrainingConfig:
        return self.plane.training_config

    @property
    def reports(self) -> List[UpdateReport]:
        """Completed updates (background jobs appear here once they land)."""
        return self.plane.reports

    @property
    def updates_performed(self) -> int:
        return self.plane.updates_performed

    @property
    def total_update_seconds(self) -> float:
        return self.plane.total_update_seconds

    def restore_update_count(self, count: int) -> None:
        self.plane.restore_update_count(count)

    # ------------------------------------------------------------------ #
    # The asynchronous trigger path
    # ------------------------------------------------------------------ #
    @property
    def pending_updates(self) -> int:
        """Retrains enqueued or running but not yet published."""
        with self._state:
            return len(self._queue) + (1 if self._active is not None else 0)

    def handle_trigger(self, trigger: UpdateTrigger, samples: Sequence[ScoreRequest]) -> None:
        """Enqueue one retrain and return immediately.

        ``samples`` is the service's drained presumed-normal buffer — the
        requests are frozen and the tuple is snapshotted here, so the buffer
        the service refills afterwards cannot leak into a queued job.
        Unlike the synchronous plane this returns ``None``, not an
        :class:`UpdateReport`: the report appears in :attr:`reports` when the
        maintenance thread finishes the job.
        """
        with self._state:
            if self._closed:
                raise RuntimeError("background update plane is closed")
            self._queue.append((trigger, tuple(samples)))
            self._state.notify_all()

    def _run(self) -> None:
        while True:
            with self._state:
                self._state.wait_for(
                    lambda: self._paused == 0 and (self._queue or self._closed)
                )
                if not self._queue:  # closed and fully drained
                    return
                job = self._queue.popleft()
                self._active = job
            trigger, samples = job
            try:
                self.plane.handle_trigger(trigger, samples)
            except BaseException as error:  # surfaced by quiesce()/close()
                with self._state:
                    self._failures.append(error)
            finally:
                with self._state:
                    self._active = None
                    self._state.notify_all()

    def pause(self) -> None:
        """Stop dequeuing new jobs; block until the in-flight one lands.

        Re-entrant (pauses nest; each needs a matching :meth:`resume`), so
        the runtime's checkpoint path can pause inside a caller's own pause.
        While paused the queue is frozen — :meth:`pending_jobs` is a stable
        snapshot a checkpoint can persist — but :meth:`handle_trigger` still
        accepts new jobs (scoring threads are not blocked; their triggers
        queue behind the freeze).  Re-raises any captured background failure
        (after undoing the pause), so a checkpoint fails loudly instead of
        persisting a lineage whose last retrain crashed.
        """
        with self._state:
            self._paused += 1
            self._state.wait_for(lambda: self._active is None)
            failed = bool(self._failures)
        if failed:
            self.resume()
            self._raise_failures()

    def resume(self) -> None:
        """Undo one :meth:`pause`; the maintenance thread picks work back up."""
        with self._state:
            if self._paused == 0:
                raise RuntimeError("resume() without a matching pause()")
            self._paused -= 1
            self._state.notify_all()

    def pending_jobs(self) -> List[tuple]:
        """Snapshot of the queued-but-not-started ``(trigger, samples)`` jobs.

        Only stable while paused (the maintenance thread dequeues otherwise);
        the checkpoint path persists this snapshot so queued retrains survive
        a restore instead of being silently dropped with the process.
        """
        with self._state:
            return list(self._queue)

    def quiesce(self) -> None:
        """Block until every queued retrain has landed (or failed).

        Re-raises the first captured background failure.  Must not be called
        while paused with jobs still queued — the frozen queue would never
        drain.  ``drain()``-style terminal paths call this so no caller ever
        observes a half-applied version lineage.
        """
        with self._state:
            self._state.wait_for(
                lambda: not self._queue and self._active is None
            )
        self._raise_failures()

    def close(self) -> None:
        """Finish queued jobs, stop the maintenance thread (idempotent).

        Any outstanding pauses are cancelled so the queued jobs can run to
        completion — shutdown executes queued retrains rather than dropping
        them.  (Runtimes that must *not* run them at shutdown checkpoint
        first: the checkpoint persists the queue, and the restored runtime
        re-enqueues it.)  Like :meth:`quiesce`, re-raises the first captured
        background failure — shutting down must not make a crashed retrain
        disappear.
        """
        with self._state:
            self._closed = True
            self._paused = 0
            self._state.notify_all()
        if self._thread.is_alive():
            self._thread.join()
        self._raise_failures()

    def _raise_failures(self) -> None:
        with self._state:
            failures, self._failures = self._failures, []
        if failures:
            raise RuntimeError(
                f"{len(failures)} background update(s) failed"
            ) from failures[0]
