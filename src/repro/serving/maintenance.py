"""In-service incremental updates: the paper's Fig. 5 loop inside the runtime.

Section IV-D keeps the CLSTM fresh by buffering presumed-normal segments,
checking drift of their hidden states (Eq. 17), and — when drift is detected
— training a new model on the buffer and merging it with the previous one.
PR 1 gave the serving tier the *detection* half (the scoring service emits
:class:`~repro.serving.service.UpdateTrigger` events) and the core library
has long had the *reaction* half (:mod:`repro.core.update`), but no code
path connected them.

The :class:`UpdatePlane` is that connection.  Attached to a scoring service,
it consumes each drift trigger together with the service's drained
presumed-normal sample buffer and

1. trains a fresh CLSTM on the buffered windows through the fused training
   engine (same short-budget config as the offline updater);
2. merges it with the currently published model
   (``merge(CLSTM_new, CLSTM_{t-1})``, convex parameter combination);
3. re-calibrates the anomaly threshold ``T_a`` by scoring the buffer through
   the merged model (the old threshold was calibrated against the old
   model's score distribution) — unless an explicit
   ``DetectionConfig.threshold`` pins it;
4. publishes the result through the :class:`ModelRegistry`, so the swap is
   an atomic version-pointer move and in-flight batches finish on their
   pinned snapshot.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.detector import AnomalyDetector
from ..core.update import incremental_training_config, merge_models, train_incremental
from ..features.sequences import SequenceBatch
from ..utils.config import TrainingConfig, UpdateConfig
from ..utils.timer import Stopwatch
from .microbatch import MicroBatcher, ScoreRequest
from .registry import ModelRegistry, ModelSnapshot
from .service import UpdateTrigger

__all__ = ["UpdateReport", "UpdatePlane"]


@dataclass(frozen=True)
class UpdateReport:
    """Outcome of one in-service incremental update."""

    version: int
    """Version number of the newly published snapshot."""

    previous_version: int
    """Version the update was based on (and merged with)."""

    trigger: UpdateTrigger
    """The drift trigger that caused the update."""

    samples: int
    """Number of buffered presumed-normal segments trained on."""

    previous_threshold: float
    threshold: float
    """``T_a`` before and after re-calibration."""

    seconds: float
    """Wall-clock cost of train + merge + re-calibrate + publish."""


class UpdatePlane:
    """Consumes drift triggers and publishes merged model versions.

    Thread-safety contract: :meth:`handle_trigger` runs the whole update
    transaction under one plane-level lock, so two shards sharing this plane
    (the shared-registry deployment, where each shard has its own drift
    monitor) can trigger concurrently from worker threads and still produce
    a serialised version lineage with deterministic per-update RNG seeds —
    the second trigger trains against the version the first one published.
    The registry's own lock makes the final publish atomic either way.  The
    transaction runs on the *calling* thread (the scoring path); wrap the
    plane in a :class:`~repro.serving.executor.BackgroundUpdatePlane` to move
    it onto a maintenance thread instead.

    Parameters
    ----------
    registry:
        The registry the serving shard reads from; updates are published back
        into it.  A service only accepts a plane wired to its own registry.
    update_config:
        Merge weight and update-epoch budget (Section IV-D parameters).
    training_config:
        Base training configuration the short update budget is derived from
        (fused-engine switch, learning rate, losses...).
    recalibration_quantile:
        Quantile of the buffered-sample scores that becomes the new ``T_a``
        (matches :meth:`AnomalyDetector.calibrate`'s default practice).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        update_config: Optional[UpdateConfig] = None,
        training_config: Optional[TrainingConfig] = None,
        recalibration_quantile: float = 0.98,
    ) -> None:
        if not 0.0 < recalibration_quantile < 1.0:
            raise ValueError("recalibration_quantile must be in (0, 1)")
        self.registry = registry
        self.update_config = update_config if update_config is not None else UpdateConfig()
        self.training_config = incremental_training_config(training_config, self.update_config)
        self.recalibration_quantile = recalibration_quantile
        self.reports: List[UpdateReport] = []
        self.total_update_seconds = 0.0
        self._restored_updates = 0
        # Serialises whole update transactions; see the class docstring.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    @property
    def updates_performed(self) -> int:
        """Total updates across this plane's lifetime, including the ones a
        restored plane inherited from before its checkpoint.  The count seeds
        the per-update training RNG, so resuming from a checkpoint retrains
        with exactly the seeds the original plane would have used."""
        return self._restored_updates + len(self.reports)

    def restore_update_count(self, count: int) -> None:
        """Adopt the update count of a checkpointed plane (restore path)."""
        if count < 0:
            raise ValueError(f"update count must be non-negative, got {count}")
        if self.reports:
            raise RuntimeError("restore_update_count requires a plane with no updates yet")
        self._restored_updates = int(count)

    @staticmethod
    def assemble_samples(samples: Sequence[ScoreRequest]) -> SequenceBatch:
        """Stack buffered score requests into a training batch.

        Each presumed-normal request already carries exactly what training
        needs: its ``q``-segment history window as the input sequence and the
        observed incoming segment as the reconstruction target.
        """
        # MicroBatcher.assemble's return order matches SequenceBatch's field
        # order by construction; sharing it keeps the training batch stacked
        # exactly like the scoring batch.
        return SequenceBatch(*MicroBatcher.assemble(list(samples)))

    def handle_trigger(
        self, trigger: UpdateTrigger, samples: Sequence[ScoreRequest]
    ) -> UpdateReport:
        """Run one full update: train on ``samples``, merge, re-calibrate, publish.

        The transaction is atomic with respect to other triggers on this
        plane (plane lock) and other publishers of the registry (registry
        lock): read latest → train → merge → re-calibrate → publish next
        version.
        """
        with self._lock:
            batch = self.assemble_samples(samples)
            base = self.registry.latest()
            stopwatch = Stopwatch().start()

            new_model = train_incremental(
                base.model, batch, self.training_config, seed=self.updates_performed + 1
            )
            merged = merge_models(
                base.model, new_model, new_weight=self.update_config.merge_weight
            )
            threshold = self._recalibrate(base, merged, batch)

            snapshot = self.registry.publish(
                merged,
                threshold,
                reason="incremental-update",
                metadata={
                    "similarity": trigger.similarity,
                    "trigger_segment": float(trigger.segment_index),
                    "samples": float(len(samples)),
                },
                # merge_models already built a private model; adopting it avoids
                # one more full parameter copy per swap.
                copy=False,
            )
            elapsed = stopwatch.stop()
            report = UpdateReport(
                version=snapshot.version,
                previous_version=base.version,
                trigger=trigger,
                samples=len(samples),
                previous_threshold=base.threshold,
                threshold=threshold,
                seconds=elapsed,
            )
            self.reports.append(report)
            self.total_update_seconds += elapsed
            return report

    def quiesce(self) -> None:
        """Synchronous planes have no in-flight work; uniform no-op.

        Exists so the sharded service and the runtime facade can quiesce any
        plane — this one or a :class:`~repro.serving.executor.
        BackgroundUpdatePlane` — without caring which they hold.
        """

    def pause(self) -> None:
        """Synchronous planes run updates in-line; nothing to pause."""

    def resume(self) -> None:
        """Counterpart of the no-op :meth:`pause`."""

    def pending_jobs(self) -> List[tuple]:
        """Synchronous planes never queue work; always empty."""
        return []

    def close(self) -> None:
        """Synchronous planes hold no thread to stop; uniform no-op."""

    # ------------------------------------------------------------------ #
    def _recalibrate(self, base: ModelSnapshot, merged, batch: SequenceBatch) -> float:
        """New ``T_a`` for the merged model (explicit config threshold wins)."""
        config = self.registry.detection_config
        if config.threshold is not None:
            return float(config.threshold)
        probe = AnomalyDetector(merged, config)
        return probe.recalibrate(batch, quantile=self.recalibration_quantile)
