"""Versioned model registry for the online-learning serving runtime.

The scoring service must keep serving while the maintenance plane retrains
and merges models.  A single shared mutable :class:`~repro.core.clstm.CLSTM`
makes that unsafe twice over: a hot swap can land between the forward pass
and the threshold decision of one micro-batch, and the fused-weight caches
of the old model can be rebuilt mid-request while its parameters are being
overwritten.

The registry removes both hazards with copy-on-write publishing:

* :meth:`ModelRegistry.publish` snapshots the model (independent parameter
  arrays via ``CLSTM.snapshot``), prewarms its fused-weight caches, wraps it
  with a calibrated :class:`~repro.core.detector.AnomalyDetector`, and
  assigns the next version number.  Published snapshots are immutable by
  contract — nothing in the runtime writes to them.
* a swap is an atomic pointer move (``self._latest = snapshot``): readers
  that already pinned a snapshot keep scoring against it, readers that pin
  afterwards see the new version.  There is no partially-updated state to
  observe.
* every shard of the serving runtime holds a :class:`RegistryHandle` and
  pins the latest snapshot once per micro-batch, so a batch's forward pass,
  score combination and threshold decision always come from one version.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..core.clstm import CLSTM
from ..core.detector import AnomalyDetector
from ..utils.config import DetectionConfig

__all__ = ["ModelSnapshot", "ModelRegistry", "RegistryHandle"]


@dataclass(frozen=True, eq=False)
class ModelSnapshot:
    """One immutable published model version.

    Attributes
    ----------
    version:
        Monotonically increasing version number (1 for the first publish).
    model:
        Private CLSTM copy with prewarmed fused-weight caches.  Treated as
        immutable after publish; :meth:`fused_fresh` checks the invariant.
    threshold:
        The calibrated anomaly threshold ``T_a`` this version serves with.
    detector:
        An :class:`AnomalyDetector` bound to ``model`` and ``threshold``;
        this is what the serving shards score through.
    reason:
        Why the version exists (``"publish"`` for explicit publishes,
        ``"incremental-update"`` for update-plane swaps).
    metadata:
        Free-form numeric annotations (drift similarity, trigger segment...).
    """

    version: int
    model: CLSTM
    threshold: float
    detector: AnomalyDetector
    reason: str = "publish"
    metadata: Mapping[str, float] = field(default_factory=dict)

    def fused_fresh(self) -> bool:
        """Whether the snapshot's fused caches still match its parameters."""
        return self.model.fused_fresh()


class ModelRegistry:
    """Append-only store of :class:`ModelSnapshot` versions.

    Thread-safety contract
    ----------------------
    The registry is fully thread-safe: every publish/evict and every read of
    the version table or the latest pointer happens under one internal
    re-entrant lock, so concurrent publishers (two shards' update planes, a
    background maintenance thread) are serialised into a coherent,
    monotonically numbered lineage and a reader can never observe a
    partially-inserted version.

    Memory visibility: a snapshot is fully constructed — private parameter
    copies made, fused caches prewarmed, detector bound — *before* the locked
    pointer swap, and readers pin under the same lock.  In CPython the lock
    acquire/release pairs are full memory barriers, so a pinned
    :class:`ModelSnapshot` and everything reachable from it is completely
    visible to the pinning thread; snapshots are immutable by contract after
    publish, so no further synchronisation is needed to *use* one.

    Parameters
    ----------
    detection_config:
        The :class:`DetectionConfig` every published snapshot's detector is
        built with (``omega``, filtering thresholds...).  ``top_k`` must be
        unset: ranking is batch-relative and incompatible with serving.
    max_versions:
        Optional keep-last-K bound on retained snapshots.  Each snapshot
        holds full private copies of the model parameters, so a long-running
        service whose update plane publishes on every drift trigger would
        otherwise grow without bound.  Version numbers stay monotonic;
        evicted versions are no longer reachable via :meth:`get` (a reader
        that already pinned one keeps its reference alive).  ``None`` keeps
        the full history.
    """

    def __init__(
        self,
        detection_config: Optional[DetectionConfig] = None,
        max_versions: Optional[int] = None,
    ) -> None:
        config = detection_config if detection_config is not None else DetectionConfig()
        if config.top_k is not None:
            raise ValueError(
                "ModelRegistry needs absolute thresholds; top_k ranking is "
                "batch-relative and incompatible with micro-batched serving"
            )
        if max_versions is not None and max_versions < 1:
            raise ValueError("max_versions must be positive when set")
        self.detection_config = config
        self.max_versions = max_versions
        # One re-entrant lock serialises publishes and guards every read of
        # the version table; see the class docstring for the full contract.
        self._lock = threading.RLock()
        self._snapshots: Dict[int, ModelSnapshot] = {}
        self._published = 0
        self._latest: Optional[ModelSnapshot] = None

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #
    def publish(
        self,
        model: CLSTM,
        threshold: float,
        *,
        reason: str = "publish",
        metadata: Optional[Mapping[str, float]] = None,
        copy: bool = True,
    ) -> ModelSnapshot:
        """Publish ``model`` as the next version (copy-on-write).

        By default the model is snapshotted — the registry's copy owns its
        parameter arrays and prewarmed fused caches, so the caller is free to
        keep training or merging the original.  ``copy=False`` adopts the
        instance directly (the caller then promises never to mutate it);
        its caches are still prewarmed here.

        Safe to call from any thread: concurrent publishes are serialised by
        the registry lock and receive consecutive version numbers.
        """
        with self._lock:
            return self._insert(
                self._published + 1, model, threshold, reason=reason, metadata=metadata, copy=copy
            )

    def restore(
        self,
        version: int,
        model: CLSTM,
        threshold: float,
        *,
        reason: str = "publish",
        metadata: Optional[Mapping[str, float]] = None,
    ) -> ModelSnapshot:
        """Re-insert a snapshot under its **original** version number.

        The checkpoint-restore path replays retained snapshots in ascending
        order; re-numbering them from 1 would collide with version numbers
        already handed out (and possibly evicted) before the checkpoint, so
        ``version`` must strictly exceed every version this registry has ever
        published.  The model is adopted (no copy) and its fused caches are
        prewarmed, exactly like ``publish(copy=False)``.
        """
        version = int(version)
        with self._lock:
            if version <= self._published:
                raise ValueError(
                    f"restore version {version} must exceed the highest version "
                    f"ever published ({self._published})"
                )
            return self._insert(
                version, model, threshold, reason=reason, metadata=metadata, copy=False
            )

    def _insert(
        self,
        version: int,
        model: CLSTM,
        threshold: float,
        *,
        reason: str,
        metadata: Optional[Mapping[str, float]],
        copy: bool,
    ) -> ModelSnapshot:
        threshold = float(threshold)
        if not np.isfinite(threshold):
            raise ValueError(f"threshold must be finite, got {threshold}")
        with self._lock:
            if copy:
                published = model.snapshot()
            else:
                published = model
                published.prewarm_fused()
            detector = AnomalyDetector(published, self.detection_config, threshold=threshold)
            self._published = version
            snapshot = ModelSnapshot(
                version=version,
                model=published,
                threshold=threshold,
                detector=detector,
                reason=reason,
                metadata=dict(metadata) if metadata else {},
            )
            self._snapshots[snapshot.version] = snapshot
            # The swap: one atomic pointer move, fully inside the lock, after
            # the snapshot is completely built.  Pinned readers are unaffected.
            self._latest = snapshot
            if self.max_versions is not None:
                while len(self._snapshots) > self.max_versions:
                    oldest = min(self._snapshots)
                    if oldest == snapshot.version:
                        # Never evict the snapshot being published: with
                        # max_versions=1 the latest version must stay reachable,
                        # or a checkpoint taken mid-publish (e.g. inside an
                        # update-trigger callback) would enumerate an empty or
                        # stale registry.
                        break
                    self._snapshots.pop(oldest)
            return snapshot

    @classmethod
    def from_detector(
        cls,
        detector: AnomalyDetector,
        *,
        copy: bool = True,
        max_versions: Optional[int] = None,
    ) -> "ModelRegistry":
        """Bootstrap a registry from a calibrated detector (version 1).

        This is the compatibility path the scoring service uses when handed a
        bare detector.  Version 1 is a full copy-on-write snapshot: mutating
        the caller's detector afterwards (re-calibrating its threshold,
        loading merged weights into its model) does **not** change what is
        served — a half-shared snapshot that tracked weight writes but froze
        the threshold would be worse than either extreme.  Callers that want
        the service to follow their updates publish new versions explicitly
        (or attach an :class:`~repro.serving.maintenance.UpdatePlane`).
        ``copy=False`` restores the shared-model behaviour for callers that
        promise not to mutate the model after bootstrap.
        """
        if detector.anomaly_threshold is None:
            raise ValueError(
                "registry bootstrap requires a calibrated detector (call "
                "AnomalyDetector.calibrate or set DetectionConfig.threshold)"
            )
        registry = cls(detection_config=detector.config, max_versions=max_versions)
        registry.publish(
            detector.model, detector.anomaly_threshold, reason="initial", copy=copy
        )
        return registry

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def latest(self) -> ModelSnapshot:
        """The currently published snapshot."""
        with self._lock:
            if self._latest is None:
                raise LookupError("registry is empty; publish a model first")
            return self._latest

    def get(self, version: int) -> ModelSnapshot:
        """The snapshot of a specific version.

        Old versions stay readable until evicted by ``max_versions``.
        """
        with self._lock:
            try:
                return self._snapshots[version]
            except KeyError:
                raise KeyError(f"unknown (or evicted) model version {version}") from None

    def versions(self) -> List[int]:
        """All retained version numbers, ascending."""
        with self._lock:
            return sorted(self._snapshots)

    def retained(self) -> List[ModelSnapshot]:
        """All retained snapshots in ascending version order.

        This is the consistent enumeration the checkpoint path walks: it can
        never surface an evicted version, and — because eviction in
        :meth:`publish` keeps the just-published latest — it always contains
        :meth:`latest`, even with ``max_versions=1`` mid-update.  Taken as one
        locked read, so a concurrent publish is either entirely in or
        entirely out of the enumeration.
        """
        with self._lock:
            return [self._snapshots[version] for version in sorted(self._snapshots)]

    @property
    def highest_published(self) -> int:
        """The highest version number ever handed out (0 before any publish)."""
        with self._lock:
            return self._published

    def __len__(self) -> int:
        with self._lock:
            return len(self._snapshots)

    def handle(self) -> "RegistryHandle":
        """A reader-side handle (one per serving shard)."""
        return RegistryHandle(self)


class RegistryHandle:
    """A reader's view of the registry with per-batch snapshot pinning.

    A shard calls :meth:`pin` exactly once per micro-batch, before the
    forward pass, and uses the returned snapshot for everything the batch
    needs (model, detector, threshold, version tag).  A publish that happens
    while the batch is being scored — e.g. the update plane running inside a
    drift-trigger callback, or a background maintenance thread — is only
    observed by the *next* ``pin``.

    Thread-safety contract: :meth:`pin` reads the latest pointer under the
    registry lock, so it can never observe a half-published snapshot; the
    handle's *own* fields (``pinned``, ``swaps_observed``) are deliberately
    unsynchronised because a handle belongs to exactly one shard and every
    pin happens under that shard's scoring lock.  Do not share one handle
    between shards — take one :meth:`ModelRegistry.handle` per reader.
    """

    def __init__(self, registry: ModelRegistry) -> None:
        self.registry = registry
        self._pinned: Optional[ModelSnapshot] = None
        self.swaps_observed = 0

    def pin(self) -> ModelSnapshot:
        """Pin and return the latest snapshot for the next unit of work."""
        snapshot = self.registry.latest()
        if self._pinned is not None and snapshot.version != self._pinned.version:
            self.swaps_observed += 1
        self._pinned = snapshot
        return snapshot

    @property
    def pinned(self) -> Optional[ModelSnapshot]:
        """The snapshot of the most recent :meth:`pin` (None before any)."""
        return self._pinned

    @property
    def version(self) -> Optional[int]:
        return self._pinned.version if self._pinned is not None else None
