"""Online-learning serving runtime: sharded micro-batched scoring that
updates its own models.

Turns the batch-oriented detector into an online service for many concurrent
live streams — and closes the paper's dynamic-maintenance loop inside the
runtime:

* per-stream rolling history windows feed a cross-stream micro-batching
  scheduler (count-based and wall-clock-deadline flushes), one fused CLSTM
  forward per batch, per-stream routing of detections;
* models live in a versioned :class:`ModelRegistry` of immutable
  :class:`ModelSnapshot` s; a swap is an atomic version-pointer move and
  every micro-batch pins one snapshot for its whole lifetime;
* drift triggers are consumed by the :class:`UpdatePlane`, which retrains on
  the buffered presumed-normal segments, merges, re-calibrates ``T_a`` and
  publishes the new version;
* the :class:`ShardedScoringService` routes streams across N shards (one
  registry handle + one batcher each) for multi-model deployments;
* execution is pluggable: the :class:`ParallelExecutor` fans ready shard
  batches out to a worker-thread pool (NumPy's BLAS kernels release the GIL)
  and the :class:`BackgroundUpdatePlane` moves retrains onto a maintenance
  thread, while the default :class:`SerialExecutor` stays bit-for-bit
  identical to the single-threaded runtime;
* the :class:`ProcessParallelExecutor` scales past the GIL entirely: shard
  batches score in persistent worker *processes* over zero-copy
  shared-memory snapshot segments, and the :class:`Rebalancer` consumes the
  :class:`ShardStats` load signal to divert new streams away from hot
  shards and split/merge shards deterministically.
"""

from .executor import (
    BackgroundUpdatePlane,
    ParallelExecutor,
    SerialExecutor,
    build_executor,
)
from .maintenance import UpdatePlane, UpdateReport
from .microbatch import MicroBatcher, QueueFull, ScoreRequest
from .procpool import ProcessParallelExecutor, WorkerCrashed
from .rebalance import RebalanceDecision, Rebalancer
from .registry import ModelRegistry, ModelSnapshot, RegistryHandle
from .service import (
    BatchScores,
    ManualClock,
    ScoringService,
    ServiceStats,
    ShardStats,
    StreamDetection,
    StreamSession,
    UpdateTrigger,
    replay_streams,
    validate_interaction_level,
)
from .sharding import ShardedScoringService, default_router

__all__ = [
    "BackgroundUpdatePlane",
    "BatchScores",
    "ManualClock",
    "MicroBatcher",
    "ModelRegistry",
    "ModelSnapshot",
    "ParallelExecutor",
    "ProcessParallelExecutor",
    "QueueFull",
    "RebalanceDecision",
    "Rebalancer",
    "RegistryHandle",
    "ScoreRequest",
    "ScoringService",
    "SerialExecutor",
    "ServiceStats",
    "ShardStats",
    "ShardedScoringService",
    "StreamDetection",
    "StreamSession",
    "UpdatePlane",
    "UpdateReport",
    "UpdateTrigger",
    "WorkerCrashed",
    "build_executor",
    "default_router",
    "replay_streams",
    "validate_interaction_level",
]
