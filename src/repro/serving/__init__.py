"""Multi-stream serving subsystem: micro-batched online anomaly scoring.

Turns the batch-oriented detector into an online service for many concurrent
live streams: per-stream rolling history windows, a cross-stream
micro-batching scheduler, one fused CLSTM forward per batch, per-stream
routing of detections, and drift signals for the incremental updater.
"""

from .microbatch import MicroBatcher, ScoreRequest
from .service import (
    ScoringService,
    ServiceStats,
    StreamDetection,
    StreamSession,
    UpdateTrigger,
    replay_streams,
)

__all__ = [
    "MicroBatcher",
    "ScoreRequest",
    "ScoringService",
    "ServiceStats",
    "StreamDetection",
    "StreamSession",
    "UpdateTrigger",
    "replay_streams",
]
