"""Sharded serving runtime: many streams, many models, one ingest surface.

A production deployment watches streams from several platforms at once, each
platform with its own CLSTM (the paper trains one model per dataset).  The
:class:`ShardedScoringService` routes streams across ``N`` scoring shards;
each shard is a full :class:`~repro.serving.service.ScoringService` — one
:class:`~repro.serving.registry.RegistryHandle`, one
:class:`~repro.serving.microbatch.MicroBatcher`, its own drift monitor and
(optionally) its own :class:`~repro.serving.maintenance.UpdatePlane` — so
shards swap, batch and maintain their models independently.

Two deployment shapes are supported:

* **one shared registry** across ``num_shards`` shards (horizontal scaling
  of a single model; every shard serves the same latest version);
* **one registry per shard** (the multi-model deployment; the router must
  send each stream to the shard owning its model).

Routing is deterministic: the default router hashes the stream id with
CRC-32, and every stream's first route is pinned so detections keep landing
on the same shard even if a custom router misbehaves.  Cross-stream
micro-batching happens *within* a shard, which is the point: streams of the
same model coalesce into full batches, while the wall-clock flush deadline
(`ServingConfig.max_batch_delay_ms`) bounds how stale a queued segment can
get when a shard's fan-in is low.

Execution is pluggable: with the default
:class:`~repro.serving.executor.SerialExecutor` every code path is
bit-for-bit identical to the pre-executor runtime, while a
:class:`~repro.serving.executor.ParallelExecutor` fans ready shard batches
out to a worker-thread pool (one fused forward per shard in flight, results
merged deterministically by shard index) and ``background_updates=True``
moves each registry's retrains onto a maintenance thread.  Terminal drains
(:meth:`ShardedScoringService.flush` / :meth:`ShardedScoringService.drain`)
deliberately stay serial in shard-index order, so end-of-run output is
reproducible at any worker count.
"""

from __future__ import annotations

import threading
import zlib
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..utils.config import ServingConfig, TrainingConfig, UpdateConfig
from .executor import BackgroundUpdatePlane, ParallelExecutor, SerialExecutor
from .maintenance import UpdatePlane, UpdateReport
from .registry import ModelRegistry
from .service import (
    ScoringService,
    ServiceStats,
    ShardStats,
    StreamDetection,
    UpdateTrigger,
    _request_from_state,
    _request_state,
)

if TYPE_CHECKING:  # pragma: no cover - typing only (avoid import cycle)
    from .rebalance import Rebalancer

__all__ = ["default_router", "ShardedScoringService"]


def default_router(stream_id: str, num_shards: int) -> int:
    """Stable stream → shard assignment (CRC-32 of the stream id)."""
    return zlib.crc32(stream_id.encode("utf-8")) % num_shards


def _pending_job_state(trigger: UpdateTrigger, samples: Sequence) -> Dict[str, object]:
    """One queued-but-not-started retrain job as a checkpoint leaf."""
    return {
        "trigger": {
            "segment_index": trigger.segment_index,
            "similarity": trigger.similarity,
            "buffered_segments": trigger.buffered_segments,
            "stream_ids": list(trigger.stream_ids),
            "model_version": trigger.model_version,
        },
        "samples": [_request_state(request) for request in samples],
    }


def _pending_job_from_state(state: Mapping[str, object]) -> Tuple[UpdateTrigger, tuple]:
    """Inverse of :func:`_pending_job_state`."""
    payload = state["trigger"]
    trigger = UpdateTrigger(
        segment_index=int(payload["segment_index"]),
        similarity=float(payload["similarity"]),
        buffered_segments=int(payload["buffered_segments"]),
        stream_ids=tuple(str(stream_id) for stream_id in payload["stream_ids"]),
        model_version=int(payload["model_version"]),
    )
    samples = tuple(_request_from_state(sample) for sample in state["samples"])
    return trigger, samples


class ShardedScoringService:
    """Route streams across N independent scoring shards.

    Parameters
    ----------
    registries:
        Either a single :class:`ModelRegistry` (shared by ``config.num_shards``
        shards) or one registry per shard (``num_shards`` is then the length
        of the sequence).
    config:
        Batching/sharding parameters (:class:`ServingConfig`).
    sequence_length:
        History length ``q`` of each stream's rolling window.
    update_config:
        Enables per-shard drift monitoring when provided.
    attach_update_planes:
        When true, every *registry* gets an :class:`UpdatePlane` (shards
        sharing a registry share the plane) — the fully closed
        online-learning loop.  Requires ``update_config``.  Note that drift
        monitoring stays per-shard: with a shared registry, shards observing
        the same drift in their own stream populations will each request an
        update from their own buffer; the shared plane serialises those into
        a coherent version lineage rather than racing.
    training_config:
        Base training configuration for the update planes.
    historical_hidden:
        Optional seed for every shard's historical hidden-state set ``S_h``
        (only meaningful with a shared registry, where all shards serve the
        same model).
    on_update_trigger:
        Callback invoked with every shard's :class:`UpdateTrigger`.
    max_history:
        Per-shard cap on the historical hidden-state set.
    router:
        Optional ``stream_id -> shard_index`` override; results are pinned
        per stream on first use.
    clock:
        Shared time source for the wall-clock flush deadlines.
    executor:
        Shard-work execution strategy — a
        :class:`~repro.serving.executor.SerialExecutor` (default; in-line,
        bit-for-bit the pre-executor behaviour) or a
        :class:`~repro.serving.executor.ParallelExecutor` (worker-thread
        fan-out of ready shard batches).  The service owns the executor and
        shuts it down in :meth:`close`.
    background_updates:
        Wrap every update plane in a
        :class:`~repro.serving.executor.BackgroundUpdatePlane`: retrains run
        on a maintenance thread instead of inside the scoring path.
        Requires ``attach_update_planes``.
    """

    def __init__(
        self,
        registries: Union[ModelRegistry, Sequence[ModelRegistry]],
        config: Optional[ServingConfig] = None,
        sequence_length: int = 9,
        update_config: Optional[UpdateConfig] = None,
        attach_update_planes: bool = False,
        training_config: Optional[TrainingConfig] = None,
        historical_hidden: Optional[np.ndarray] = None,
        on_update_trigger: Optional[Callable[[UpdateTrigger], None]] = None,
        max_history: Optional[int] = None,
        router: Optional[Callable[[str], int]] = None,
        clock: Optional[Callable[[], float]] = None,
        executor: Optional[Union[SerialExecutor, ParallelExecutor]] = None,
        background_updates: bool = False,
        rebalancer: Optional["Rebalancer"] = None,
    ) -> None:
        config = config if config is not None else ServingConfig()
        if isinstance(registries, ModelRegistry):
            shard_registries: List[ModelRegistry] = [registries] * config.num_shards
        else:
            shard_registries = list(registries)
            if not shard_registries:
                raise ValueError("registries must not be empty")
        if attach_update_planes and update_config is None:
            raise ValueError("attach_update_planes requires update_config")
        if background_updates and not attach_update_planes:
            raise ValueError("background_updates requires attach_update_planes")
        self.config = config
        self.executor = executor if executor is not None else SerialExecutor()
        self.shards: List[ScoringService] = []
        # One plane per *distinct* registry: shards sharing a registry share
        # the plane, so every update trains and merges against the latest
        # published version instead of N planes racing each other.  (Each
        # shard still has its own drift monitor over its own streams, so two
        # shards of one model can both legitimately request updates — from
        # disjoint sample buffers.)
        planes: Dict[int, Union[UpdatePlane, BackgroundUpdatePlane]] = {}
        for registry in shard_registries:
            plane = None
            if attach_update_planes:
                plane = planes.get(id(registry))
                if plane is None:
                    plane = UpdatePlane(
                        registry, update_config=update_config, training_config=training_config
                    )
                    if background_updates:
                        plane = BackgroundUpdatePlane(plane)
                    planes[id(registry)] = plane
            self.shards.append(
                ScoringService(
                    sequence_length=sequence_length,
                    max_batch_size=config.max_batch_size,
                    update_config=update_config,
                    historical_hidden=historical_hidden,
                    on_update_trigger=on_update_trigger,
                    max_history=max_history,
                    registry=registry,
                    update_plane=plane,
                    max_batch_delay_ms=config.max_batch_delay_ms,
                    clock=clock,
                    max_queue_depth=config.max_queue_depth,
                    latency_reservoir=config.latency_reservoir,
                )
            )
        self._planes = planes
        # Construction recipe for rebalancer-driven shard splits: a fresh
        # shard over an existing registry must match its siblings exactly.
        self._shard_kwargs: Dict[str, object] = {
            "sequence_length": sequence_length,
            "max_batch_size": config.max_batch_size,
            "update_config": update_config,
            "historical_hidden": historical_hidden,
            "on_update_trigger": on_update_trigger,
            "max_history": max_history,
            "max_batch_delay_ms": config.max_batch_delay_ms,
            "clock": clock,
            "max_queue_depth": config.max_queue_depth,
            "latency_reservoir": config.latency_reservoir,
        }
        self._router = router if router is not None else (
            lambda stream_id: default_router(stream_id, len(self.shards))
        )
        self._routes: Dict[str, int] = {}
        # Guards the route table only; shards have their own internal locks.
        self._routes_lock = threading.Lock()
        # Shards retired by a merge: never routed to again, kept in the list
        # so historical shard indices (detections, stats, checkpoints) stay
        # stable.  The merge-eligibility floor is the construction-time shard
        # count — only split-created shards may be merged away.
        self._retired: set = set()
        self._base_shards = len(self.shards)
        self.rebalancer = rebalancer
        if rebalancer is not None:
            rebalancer.bind(self)
        # Executors that manage per-shard resources (the process pool's
        # shared-memory workers) learn the shard set here and extend it via
        # notify_shard_added when a split lands.
        bind = getattr(self.executor, "bind", None)
        if callable(bind):
            bind(self)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def retired_shards(self) -> FrozenSet[int]:
        """Indices of shards retired by a merge (never routed to again)."""
        return frozenset(self._retired)

    def shard_index(self, stream_id: str) -> int:
        """The (pinned) shard index owning ``stream_id`` (thread-safe).

        A stream seen for the first time is routed by the router and — when
        a rebalancer is attached — possibly diverted away from a retired or
        hot shard before the route is pinned.  Pinned routes only ever
        change through an explicit merge handoff.
        """
        with self._routes_lock:
            index = self._routes.get(stream_id)
            if index is None:
                index = int(self._router(stream_id))
                if not 0 <= index < len(self.shards):
                    raise ValueError(
                        f"router assigned stream '{stream_id}' to shard {index}; "
                        f"valid range is [0, {len(self.shards)})"
                    )
                if self.rebalancer is not None:
                    index = self.rebalancer.route(stream_id, index)
                self._routes[stream_id] = index
            return index

    def shard_of(self, stream_id: str) -> ScoringService:
        """The shard service owning ``stream_id``."""
        return self.shards[self.shard_index(stream_id)]

    # ------------------------------------------------------------------ #
    # Topology primitives (rebalancer-driven; caller holds _routes_lock)
    # ------------------------------------------------------------------ #
    def _spawn_shard_locked(self, source_index: int) -> int:
        """Append a fresh shard over ``source_index``'s registry; return it.

        The new shard matches its siblings exactly (same construction
        recipe, same update plane when one is attached) and starts empty —
        so it is the least-loaded shard by construction and new streams
        drift to it through the rebalancer's hot-shard diversion.  Existing
        streams keep their pinned routes.
        """
        registry = self.shards[source_index].registry
        plane = self._planes.get(id(registry))
        shard = ScoringService(
            registry=registry, update_plane=plane, **self._shard_kwargs
        )
        self.shards.append(shard)
        index = len(self.shards) - 1
        notify = getattr(self.executor, "notify_shard_added", None)
        if callable(notify):
            notify(shard, index)
        return index

    def _merge_shard_locked(self, source_index: int, target_index: int) -> None:
        """Retire ``source_index``, handing its sessions to ``target_index``.

        The explicit route handoff: sessions (rolling windows, detection
        history and all) move in one step, every pinned route is re-pinned
        to the survivor, and the source joins the retired set.  Requires the
        source's queue to be empty (``evict_sessions`` enforces it) and
        routing quiescence — see :mod:`repro.serving.rebalance`.
        """
        if source_index == target_index:
            raise ValueError("cannot merge a shard into itself")
        if target_index in self._retired:
            raise ValueError(f"merge target shard {target_index} is retired")
        sessions = self.shards[source_index].evict_sessions()
        self.shards[target_index].adopt_sessions(sessions)
        for stream_id, index in self._routes.items():
            if index == source_index:
                self._routes[stream_id] = target_index
        self._retired.add(source_index)

    # ------------------------------------------------------------------ #
    # Ingest (same surface as ScoringService, so replay drivers compose)
    # ------------------------------------------------------------------ #
    def submit(
        self,
        stream_id: str,
        action_feature: np.ndarray,
        interaction_feature: np.ndarray,
        interaction_level: Optional[float] = None,
    ) -> List[StreamDetection]:
        """Feed one segment of one stream to its shard.

        ``interaction_level`` must be finite when given; ``None`` (the
        default) is the explicit "unknown" opt-in.  Non-finite values are
        rejected at the shard's ingest boundary
        (:func:`~repro.serving.service.validate_interaction_level`) instead
        of silently poisoning the drift monitor.

        Under the serial executor this is the shard's own in-line
        submit-and-score path (the reference semantics).  Under a parallel
        executor the segment is enqueued and every shard's ready batches are
        fanned out to the worker pool, merged by shard index.
        """
        shard = self.shard_of(stream_id)
        if self.executor.serial:
            return shard.submit(
                stream_id, action_feature, interaction_feature, interaction_level
            )
        shard.enqueue(stream_id, action_feature, interaction_feature, interaction_level)
        return self._score_ready()

    def submit_many(
        self, submissions: Iterable[Tuple]
    ) -> List[StreamDetection]:
        """Feed one tick of segments from many streams, then score once.

        ``submissions`` is an iterable of ``(stream_id, action_feature,
        interaction_feature[, interaction_level])`` tuples — the shape a
        transport tier delivers when aligned live streams produce a segment
        each.  All segments are enqueued first and scoring runs once at the
        end, which is what lets multiple shards' batches fill in the same
        tick and score *concurrently* under a parallel executor.  Results
        are merged deterministically by shard index.
        """
        for submission in submissions:
            stream_id, action_feature, interaction_feature = submission[:3]
            level = submission[3] if len(submission) > 3 else None
            self.shard_of(stream_id).enqueue(
                stream_id, action_feature, interaction_feature, level
            )
        return self._score_ready()

    def _score_ready(self) -> List[StreamDetection]:
        """Score every shard holding a full or deadline-expired batch.

        Ready shards are dispatched through the executor (one non-blocking
        scoring task per shard — a shard already being scored by another
        thread is skipped, keeping one fused forward per shard in flight)
        and the detections are merged in ascending shard-index order.
        """
        ready = [shard for shard in self.shards if shard.has_ready_work()]
        if not ready:
            return []
        results = self.executor.map([shard.try_score_ready for shard in ready])
        return [detection for result in results for detection in result]

    def poll(self) -> List[StreamDetection]:
        """Run deadline flushes on every shard (fanned out when parallel).

        When a rebalancer is attached, each poll opens with one rebalance
        round (at most one split and one merge) before any scoring — the
        topology is stable for the rest of the tick.
        """
        if self.rebalancer is not None:
            self.rebalancer.maybe_rebalance()
        results = self.executor.map([shard.poll for shard in self.shards])
        return [detection for result in results for detection in result]

    def flush(self) -> List[StreamDetection]:
        """Drain every shard regardless of batch occupancy.

        Deliberately serial in shard-index order even under a parallel
        executor: a terminal drain is rare and latency-insensitive, and
        serialising it keeps end-of-run detections — including any update
        publishes the last batches trigger — deterministic at any worker
        count.
        """
        produced: List[StreamDetection] = []
        for shard in self.shards:
            produced.extend(shard.flush())
        return produced

    def drain(self) -> List[StreamDetection]:
        """Terminal drain: deadline-expired batches first, then everything.

        Serial in shard-index order (see :meth:`flush`); afterwards
        :meth:`quiesce` waits for any background retrains the final batches
        triggered, so when ``drain()`` returns the runtime is fully idle.
        """
        produced: List[StreamDetection] = []
        for shard in self.shards:
            produced.extend(shard.drain())
        self.quiesce()
        return produced

    def detections(self, stream_id: str) -> List[StreamDetection]:
        """All detections routed to ``stream_id`` so far."""
        return self.shard_of(stream_id).detections(stream_id)

    # ------------------------------------------------------------------ #
    # Aggregate views
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> ServiceStats:
        """Aggregate serving counters across all shards."""
        total = ServiceStats()
        for shard in self.shards:
            total.segments_scored += shard.stats.segments_scored
            total.batches += shard.stats.batches
            total.scoring_seconds += shard.stats.scoring_seconds
            total.forward_seconds += shard.stats.forward_seconds
            total.score_seconds += shard.stats.score_seconds
            total.update_seconds += shard.stats.update_seconds
        return total

    def shard_stats(self) -> List[ServiceStats]:
        return [shard.stats for shard in self.shards]

    def load_stats(self) -> List[ShardStats]:
        """One consistent :class:`ShardStats` sample per shard.

        The cross-shard load picture (queue depths, batch occupancy, scoring
        latency) that a rebalancer — or an operator dashboard — reads to
        decide whether the routing is keeping shards evenly fed.
        """
        return [shard.load_stats(index) for index, shard in enumerate(self.shards)]

    def reset_stats(self) -> None:
        for shard in self.shards:
            shard.reset_stats()

    def executor_stats(self) -> Dict[str, object]:
        """JSON-safe executor introspection (segments, workers, zero-copy).

        Executors with real resources (the process pool) report their full
        stats dict; the thread/serial executors report mode and width.
        """
        stats = getattr(self.executor, "stats", None)
        if callable(stats):
            return stats()
        return {
            "mode": "serial" if self.executor.serial else "thread",
            "workers": self.executor.workers,
        }

    def rebalance_stats(self) -> Dict[str, object]:
        """JSON-safe rebalancing summary (decision log tail, retired set)."""
        rebalancer = self.rebalancer
        decisions = rebalancer.decisions if rebalancer is not None else []
        return {
            "enabled": rebalancer is not None and rebalancer.config.rebalance,
            "decisions": len(decisions),
            "recent": [decision.to_dict() for decision in decisions[-20:]],
            "retired_shards": sorted(self._retired),
            "shards": len(self.shards),
        }

    @property
    def update_triggers(self) -> List[UpdateTrigger]:
        """Every shard's drift triggers (shard-major order)."""
        triggers: List[UpdateTrigger] = []
        for shard in self.shards:
            triggers.extend(shard.update_triggers)
        return triggers

    @property
    def update_reports(self) -> List[UpdateReport]:
        """Every completed in-service update, one entry per update.

        Shards sharing a registry share an update plane, so planes are
        deduplicated before their reports are collected.
        """
        return [report for plane in self._distinct_planes() for report in plane.reports]

    def model_versions(self) -> Mapping[int, int]:
        """shard index -> currently published model version."""
        return {index: shard.model_version for index, shard in enumerate(self.shards)}

    # ------------------------------------------------------------------ #
    # Lifecycle (quiesce/close) and durable state (checkpoint/restore)
    # ------------------------------------------------------------------ #
    def _distinct_planes(self) -> List[UpdatePlane]:
        """Every attached plane once, in first-owning-shard order."""
        planes: List[UpdatePlane] = []
        for shard in self.shards:
            plane = shard.update_plane
            if plane is not None and not any(plane is known for known in planes):
                planes.append(plane)
        return planes

    def quiesce(self) -> None:
        """Wait until every in-flight background retrain has landed.

        A no-op with synchronous planes.  Terminal paths (:meth:`drain`)
        call this so the runtime is fully idle afterwards; re-raises any
        failure a background retrain captured.
        """
        for plane in self._distinct_planes():
            plane.quiesce()

    def pause_maintenance(self) -> None:
        """Pause every update plane (wait only for *in-flight* retrains).

        The checkpoint path brackets :meth:`export_state` with this and
        :meth:`resume_maintenance`: queued-but-not-started retrains stay
        queued (and are persisted) instead of being executed up front.  On a
        partial failure — a plane re-raising a captured retrain crash — the
        planes already paused are resumed before the error propagates, so no
        plane is left frozen.
        """
        paused: List[UpdatePlane] = []
        try:
            for plane in self._distinct_planes():
                plane.pause()
                paused.append(plane)
        except BaseException:
            for plane in reversed(paused):
                plane.resume()
            raise

    def resume_maintenance(self) -> None:
        """Undo one :meth:`pause_maintenance` on every update plane."""
        for plane in self._distinct_planes():
            plane.resume()

    def close(self) -> None:
        """Stop maintenance threads and shut the executor down (idempotent).

        Queued requests are *not* scored — call :meth:`drain` first for a
        clean shutdown.  The service cannot be fed afterwards.
        """
        for plane in self._distinct_planes():
            plane.close()
        self.executor.close()

    def export_state(self) -> Dict[str, object]:
        """Continuation state of the whole sharded runtime.

        Bundles each shard's :meth:`ScoringService.export_state`, the pinned
        stream → shard routes, every distinct update plane's lifetime update
        count (the count seeds the per-update training RNG, so it must
        survive a checkpoint for retrains to stay deterministic) and each
        plane's queue of not-yet-started retrain jobs (stable only while
        :meth:`pause_maintenance` holds — the checkpoint path pauses first).
        """
        return {
            "routes": dict(self._routes),
            "num_shards": len(self.shards),
            "retired": sorted(self._retired),
            "shards": [shard.export_state() for shard in self.shards],
            "plane_updates": [plane.updates_performed for plane in self._distinct_planes()],
            "plane_pending": [
                [_pending_job_state(trigger, samples) for trigger, samples in plane.pending_jobs()]
                for plane in self._distinct_planes()
            ],
        }

    def restore_state(self, state: Mapping[str, object]) -> None:
        """Load an :meth:`export_state` payload into this (fresh) runtime.

        The service must have been rebuilt with the same shard count and
        plane layout the checkpoint was taken with (the runtime facade
        guarantees this by rebuilding from the persisted config).
        """
        shard_states = state["shards"]
        if len(shard_states) != len(self.shards):
            raise ValueError(
                f"checkpoint has {len(shard_states)} shard(s); "
                f"this service was built with {len(self.shards)}"
            )
        for stream_id, index in state["routes"].items():
            index = int(index)
            if not 0 <= index < len(self.shards):
                raise ValueError(
                    f"checkpoint routes stream '{stream_id}' to shard {index}; "
                    f"valid range is [0, {len(self.shards)})"
                )
            self._routes[str(stream_id)] = index
        # Retired shards survive the checkpoint (their indices must stay
        # routable-away-from); merge eligibility resets, though — the
        # restored topology becomes the new base shard count.
        self._retired = {int(index) for index in state.get("retired") or []}
        for shard, shard_state in zip(self.shards, shard_states):
            shard.restore_state(shard_state)
        planes = self._distinct_planes()
        plane_updates = state.get("plane_updates") or []
        if len(plane_updates) != len(planes):
            raise ValueError(
                f"checkpoint has {len(plane_updates)} update plane(s); "
                f"this service was built with {len(planes)}"
            )
        for plane, count in zip(planes, plane_updates):
            plane.restore_update_count(int(count))
        # Re-enqueue retrains that were queued (not yet started) at
        # checkpoint time — absent in pre-format-2 checkpoints.
        plane_pending = state.get("plane_pending")
        if plane_pending:
            if len(plane_pending) != len(planes):
                raise ValueError(
                    f"checkpoint has pending jobs for {len(plane_pending)} update "
                    f"plane(s); this service was built with {len(planes)}"
                )
            for plane, jobs in zip(planes, plane_pending):
                for job in jobs:
                    trigger, samples = _pending_job_from_state(job)
                    plane.handle_trigger(trigger, samples)

    @property
    def pending_updates(self) -> int:
        """Retrains enqueued or in flight across all update planes."""
        return sum(
            getattr(plane, "pending_updates", 0) for plane in self._distinct_planes()
        )
