"""RTFM baseline — "Robust Temporal Feature Magnitude Learning".

Tian et al. (ICCV 2021) approach weakly-supervised video anomaly detection by
learning an embedding in which the *feature magnitude* of abnormal snippets is
larger than that of normal snippets; training uses only video-level labels
through a top-k multiple-instance ranking objective.

The reproduction keeps the method's structure on the feature substrate:

* the training stream is chopped into fixed-length *clips* (bags of
  consecutive segments) that inherit a weak clip-level label — anomalous when
  any of their segments is anomalous — mimicking the video-level labels RTFM
  assumes;
* a small MLP embeds each segment's action feature; the clip score is the
  mean L2 magnitude of its top-k embedded segments;
* training maximises the margin between abnormal-clip and normal-clip scores
  (hinge ranking loss) plus a magnitude regulariser on normal segments;
* at test time a segment's anomaly score is the magnitude of its embedding.

Like LTR and VEC, RTFM sees only the video side, so it cannot exploit audience
reactions — the comparison point of the paper.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import nn
from ..core.base import ScoredStream, StreamAnomalyDetector
from ..features.pipeline import StreamFeatures
from ..utils.config import TrainingConfig

__all__ = ["RTFMDetector"]


class RTFMDetector(StreamAnomalyDetector):
    """Top-k feature-magnitude detector with weak clip-level supervision."""

    name = "RTFM"

    def __init__(
        self,
        clip_length: int = 16,
        top_k: int = 3,
        embedding_dim: int = 32,
        hidden: int = 128,
        margin: float = 1.0,
        training: TrainingConfig | None = None,
        seed: int = 0,
    ) -> None:
        if clip_length < 2:
            raise ValueError("clip_length must be at least 2")
        if top_k < 1:
            raise ValueError("top_k must be positive")
        self.clip_length = clip_length
        self.top_k = top_k
        self.embedding_dim = embedding_dim
        self.hidden = hidden
        self.margin = margin
        self.training = training if training is not None else TrainingConfig()
        self.seed = seed
        self._embedding: Optional[nn.MLP] = None
        self._score_sign: float = 1.0

    # ------------------------------------------------------------------ #
    def fit(self, features: StreamFeatures) -> "RTFMDetector":
        clips, clip_labels = self._clips(features)
        if not clips:
            raise ValueError("training stream too short to form RTFM clips")
        rng = np.random.default_rng(self.seed)
        self._embedding = nn.MLP(
            sizes=[features.action_dim, self.hidden, self.embedding_dim],
            activation="relu",
            rng=rng,
        )
        self._train(clips, clip_labels)
        self._calibrate_sign(features)
        return self

    def score_stream(self, features: StreamFeatures) -> ScoredStream:
        if self._embedding is None:
            raise RuntimeError("fit() must be called before score_stream()")
        action = features.action
        if action.shape[0] == 0:
            return ScoredStream(segment_indices=np.zeros(0, dtype=np.int64), scores=np.zeros(0))
        with nn.no_grad():
            embedded = self._embedding(nn.Tensor(action)).numpy()
        scores = self._score_sign * np.linalg.norm(embedded, axis=1)
        indices = np.arange(action.shape[0], dtype=np.int64)
        return ScoredStream(segment_indices=indices, scores=scores)

    # ------------------------------------------------------------------ #
    def _clips(self, features: StreamFeatures) -> tuple[List[np.ndarray], np.ndarray]:
        action = features.action
        labels = features.labels
        clips: List[np.ndarray] = []
        clip_labels: List[int] = []
        for start in range(0, action.shape[0] - self.clip_length + 1, self.clip_length):
            stop = start + self.clip_length
            clips.append(action[start:stop])
            clip_labels.append(int(labels[start:stop].any()))
        return clips, np.array(clip_labels, dtype=np.int64)

    def _calibrate_sign(self, features: StreamFeatures) -> None:
        """Fix the score orientation after training.

        With very small training sets the margin objective occasionally
        converges to an embedding where *normal* segments have the larger
        magnitude.  RTFM's decision rule is "larger magnitude = anomalous", so
        we check the orientation on the (weakly labelled) training data and
        flip the score sign when needed — the standard practice of orienting a
        one-dimensional score with held-in data.
        """
        self._score_sign = 1.0
        labels = features.labels
        if labels.sum() == 0 or labels.sum() == labels.size:
            return
        with nn.no_grad():
            embedded = self._embedding(nn.Tensor(features.action)).numpy()
        magnitudes = np.linalg.norm(embedded, axis=1)
        if magnitudes[labels == 1].mean() < magnitudes[labels == 0].mean():
            self._score_sign = -1.0

    def _clip_score(self, clip: np.ndarray) -> nn.Tensor:
        """Mean magnitude of the top-k embedded segments of a clip."""
        embedded = self._embedding(nn.Tensor(clip))
        magnitudes = (embedded * embedded).sum(axis=-1) ** 0.5
        values = magnitudes.numpy()
        k = min(self.top_k, len(values))
        top_indices = np.argsort(values)[::-1][:k].copy()
        return magnitudes[top_indices].mean()

    def _train(self, clips: List[np.ndarray], clip_labels: np.ndarray) -> None:
        config = self.training
        optimizer = nn.Adam(self._embedding.parameters(), lr=config.learning_rate)
        rng = np.random.default_rng(config.seed)
        normal_indices = np.nonzero(clip_labels == 0)[0]
        abnormal_indices = np.nonzero(clip_labels == 1)[0]
        if len(normal_indices) == 0:
            raise ValueError("RTFM training needs at least one normal clip")

        epochs = max(1, config.epochs)
        for _ in range(epochs):
            if len(abnormal_indices) > 0:
                pairs = min(len(normal_indices), len(abnormal_indices))
                chosen_normal = rng.choice(normal_indices, size=pairs, replace=False)
                chosen_abnormal = rng.choice(abnormal_indices, size=pairs, replace=False)
                for normal_index, abnormal_index in zip(chosen_normal, chosen_abnormal):
                    normal_score = self._clip_score(clips[normal_index])
                    abnormal_score = self._clip_score(clips[abnormal_index])
                    # Hinge ranking: abnormal magnitude should exceed normal by the margin.
                    ranking = (normal_score - abnormal_score + self.margin).relu()
                    loss = ranking + normal_score * 0.01
                    optimizer.zero_grad()
                    loss.backward()
                    optimizer.step()
            else:
                # Without any weakly-abnormal clip fall back to magnitude
                # minimisation on normal clips (one-class variant).
                for normal_index in rng.permutation(normal_indices):
                    normal_score = self._clip_score(clips[normal_index])
                    loss = normal_score
                    optimizer.zero_grad()
                    loss.backward()
                    optimizer.step()
