"""Literature baselines the paper compares against (LTR, VEC, RTFM).

The two LSTM-family ablations (plain LSTM, CLSTM-S) live in
:mod:`repro.core.variants`; :func:`all_detectors` builds the full competitor
set used by the effectiveness benchmarks.
"""

from typing import Dict, List

from ..core.base import StreamAnomalyDetector
from ..core.model import AOVLIS
from ..core.variants import CLSTMSingleCouplingDetector, LSTMOnlyDetector
from ..utils.config import DetectionConfig, TrainingConfig
from .ltr import LTRDetector
from .rtfm import RTFMDetector
from .vec import VECDetector

__all__ = ["LTRDetector", "VECDetector", "RTFMDetector", "all_detectors"]


def all_detectors(
    sequence_length: int = 9,
    training: TrainingConfig | None = None,
    detection: DetectionConfig | None = None,
    seed: int = 0,
) -> Dict[str, StreamAnomalyDetector]:
    """Instantiate every method compared in Fig. 9(b)/Fig. 10/Table IV.

    Returns a name -> detector mapping in the paper's presentation order:
    LTR, VEC, LSTM, RTFM, CLSTM-S, CLSTM.
    """
    training = training if training is not None else TrainingConfig()
    detection = detection if detection is not None else DetectionConfig()
    return {
        "LTR": LTRDetector(training=training, seed=seed),
        "VEC": VECDetector(training=training, seed=seed),
        "LSTM": LSTMOnlyDetector(sequence_length=sequence_length, training=training, seed=seed),
        "RTFM": RTFMDetector(training=training, seed=seed),
        "CLSTM-S": CLSTMSingleCouplingDetector(
            sequence_length=sequence_length, training=training, detection=detection, seed=seed
        ),
        "CLSTM": AOVLIS(
            sequence_length=sequence_length, training=training, detection=detection, seed=seed
        ),
    }
