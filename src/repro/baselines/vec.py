"""VEC baseline — "Cloze Test Helps: Video Event Completion".

Yu et al. (ACM MM 2020) train networks to complete erased patches/frames of a
video event from its surrounding context; events whose erased part cannot be
completed well are anomalies.  The reproduction keeps the cloze structure on
the feature substrate: for a window of ``2 * context + 1`` consecutive
segments, the centre segment's action feature is erased and an MLP infers it
from the concatenated context features (both *past and future* segments —
the bidirectional context the paper credits VEC/RTFM for).  The anomaly score
of the centre segment is the Jensen–Shannon divergence between the inferred
and true features.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..core.base import ScoredStream, StreamAnomalyDetector
from ..core.scoring import js_divergence
from ..features.pipeline import StreamFeatures
from ..utils.config import TrainingConfig

__all__ = ["VECDetector"]


class VECDetector(StreamAnomalyDetector):
    """Cloze-style completion detector over action features."""

    name = "VEC"

    def __init__(
        self,
        context: int = 2,
        hidden: int = 128,
        training: TrainingConfig | None = None,
        seed: int = 0,
    ) -> None:
        if context < 1:
            raise ValueError("context must be positive")
        self.context = context
        self.hidden = hidden
        self.training = training if training is not None else TrainingConfig()
        self.seed = seed
        self._completion: Optional[nn.MLP] = None

    # ------------------------------------------------------------------ #
    def fit(self, features: StreamFeatures) -> "VECDetector":
        inputs, targets, labels, _ = self._cloze_pairs(features)
        normal = labels == 0
        if not np.any(normal):
            raise ValueError("no normal cloze windows available for VEC training")
        inputs, targets = inputs[normal], targets[normal]
        rng = np.random.default_rng(self.seed)
        self._completion = nn.MLP(
            sizes=[inputs.shape[1], self.hidden, self.hidden, targets.shape[1]],
            activation="relu",
            output_activation="softmax",
            rng=rng,
        )
        self._train(inputs, targets)
        return self

    def score_stream(self, features: StreamFeatures) -> ScoredStream:
        if self._completion is None:
            raise RuntimeError("fit() must be called before score_stream()")
        inputs, targets, _, indices = self._cloze_pairs(features)
        if inputs.shape[0] == 0:
            return ScoredStream(segment_indices=np.zeros(0, dtype=np.int64), scores=np.zeros(0))
        with nn.no_grad():
            inferred = self._completion(nn.Tensor(inputs)).numpy()
        scores = js_divergence(inferred, targets)
        return ScoredStream(segment_indices=indices, scores=scores)

    # ------------------------------------------------------------------ #
    def _cloze_pairs(
        self, features: StreamFeatures
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        action = features.action
        labels = features.labels
        total = action.shape[0]
        window = 2 * self.context + 1
        count = total - window + 1
        if count <= 0:
            dim = action.shape[1]
            empty = np.zeros((0, dim * (window - 1)))
            return empty, np.zeros((0, dim)), np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        inputs = []
        targets = []
        centre_indices = []
        for start in range(count):
            centre = start + self.context
            context_indices = [start + offset for offset in range(window) if start + offset != centre]
            inputs.append(action[context_indices].reshape(-1))
            targets.append(action[centre])
            centre_indices.append(centre)
        centre_indices = np.array(centre_indices, dtype=np.int64)
        return (
            np.stack(inputs, axis=0),
            np.stack(targets, axis=0),
            labels[centre_indices],
            centre_indices,
        )

    def _train(self, inputs: np.ndarray, targets: np.ndarray) -> None:
        config = self.training
        optimizer = nn.Adam(self._completion.parameters(), lr=config.learning_rate)
        rng = np.random.default_rng(config.seed)
        for _ in range(config.epochs):
            order = rng.permutation(inputs.shape[0])
            for start in range(0, inputs.shape[0], config.batch_size):
                indices = order[start : start + config.batch_size]
                prediction = self._completion(nn.Tensor(inputs[indices]))
                loss = nn.js_divergence_loss(prediction, nn.Tensor(targets[indices]))
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
