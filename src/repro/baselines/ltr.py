"""LTR baseline — "Learning Temporal Regularity in Video Sequences".

Hasan et al. (CVPR 2016) learn an autoencoder over short temporal windows of
appearance/motion features; regular (normal) motion reconstructs with low
error and anomalies with high error.  The reproduction keeps the method's
essence on our feature substrate: a fully-connected autoencoder over a sliding
window of consecutive action-recognition features, trained on normal segments
only, scoring each segment by the reconstruction error of the window that ends
at it.  Audience interaction is ignored — which is exactly the blind spot the
paper exploits when comparing against it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..core.base import ScoredStream, StreamAnomalyDetector
from ..features.pipeline import StreamFeatures
from ..utils.config import TrainingConfig

__all__ = ["LTRDetector"]


class LTRDetector(StreamAnomalyDetector):
    """Temporal-regularity autoencoder over action features."""

    name = "LTR"

    def __init__(
        self,
        window: int = 4,
        bottleneck: int = 32,
        hidden: int = 128,
        training: TrainingConfig | None = None,
        seed: int = 0,
    ) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        self.window = window
        self.bottleneck = bottleneck
        self.hidden = hidden
        self.training = training if training is not None else TrainingConfig()
        self.seed = seed
        self._autoencoder: Optional[nn.MLP] = None
        self._input_dim: Optional[int] = None

    # ------------------------------------------------------------------ #
    def fit(self, features: StreamFeatures) -> "LTRDetector":
        windows, window_labels, _ = self._windows(features)
        normal_windows = windows[window_labels == 0]
        if normal_windows.shape[0] == 0:
            raise ValueError("no normal windows available for LTR training")
        self._input_dim = normal_windows.shape[1]
        rng = np.random.default_rng(self.seed)
        self._autoencoder = nn.MLP(
            sizes=[self._input_dim, self.hidden, self.bottleneck, self.hidden, self._input_dim],
            activation="relu",
            rng=rng,
        )
        self._train(normal_windows)
        return self

    def score_stream(self, features: StreamFeatures) -> ScoredStream:
        if self._autoencoder is None:
            raise RuntimeError("fit() must be called before score_stream()")
        windows, _, indices = self._windows(features)
        if windows.shape[0] == 0:
            return ScoredStream(segment_indices=np.zeros(0, dtype=np.int64), scores=np.zeros(0))
        with nn.no_grad():
            reconstruction = self._autoencoder(nn.Tensor(windows)).numpy()
        errors = np.mean((reconstruction - windows) ** 2, axis=1)
        return ScoredStream(segment_indices=indices, scores=errors)

    # ------------------------------------------------------------------ #
    def _windows(self, features: StreamFeatures) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stack ``window`` consecutive action features ending at each segment."""
        action = features.action
        labels = features.labels
        count = action.shape[0] - self.window + 1
        if count <= 0:
            dim = action.shape[1] * self.window
            return np.zeros((0, dim)), np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        windows = np.stack(
            [action[i : i + self.window].reshape(-1) for i in range(count)], axis=0
        )
        indices = np.arange(self.window - 1, action.shape[0], dtype=np.int64)
        window_labels = np.array(
            [int(labels[i : i + self.window].any()) for i in range(count)], dtype=np.int64
        )
        return windows, window_labels, indices

    def _train(self, windows: np.ndarray) -> None:
        config = self.training
        optimizer = nn.Adam(self._autoencoder.parameters(), lr=config.learning_rate)
        rng = np.random.default_rng(config.seed)
        data = nn.Tensor(windows)
        for _ in range(config.epochs):
            order = rng.permutation(windows.shape[0])
            for start in range(0, windows.shape[0], config.batch_size):
                indices = order[start : start + config.batch_size]
                batch = nn.Tensor(windows[indices])
                reconstruction = self._autoencoder(batch)
                loss = nn.mse_loss(reconstruction, batch)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        del data
