"""Quickstart: the unified runtime in one config and five calls.

The whole AOVLIS system — feature scoring, CLSTM training, REIA detection,
micro-batched serving — stands up behind a single declarative
:class:`~repro.runtime.RuntimeConfig` and a :class:`~repro.runtime.Runtime`:

1. simulate a training stream and a live test stream for the INF dataset;
2. extract action-recognition and audience-interaction features;
3. describe the deployment as one (reviewable, JSON-serialisable) config;
4. ``Runtime.from_config(cfg).fit(train)`` — train, calibrate, publish v1;
5. stream the live segments through ``ingest`` and read the detections.

The lower-level building blocks (``AOVLIS``, ``ScoringService``, ...) remain
public — see ``examples/multi_stream_serving.py`` for the escape hatch.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    FeaturePipeline,
    ModelConfig,
    Runtime,
    RuntimeConfig,
    ServingConfig,
    TrainingConfig,
    auroc,
    load_dataset,
)


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Simulate an INF-style dataset (train + live test stream).
    # ------------------------------------------------------------------ #
    spec = load_dataset("INF", base_train_seconds=360, base_test_seconds=240, seed=42)
    print(f"Simulated dataset -> {spec.description}")

    # ------------------------------------------------------------------ #
    # 2. Build the feature pipeline (simulated ResNet50-I3D + interaction).
    # ------------------------------------------------------------------ #
    pipeline = FeaturePipeline(
        action_dim=100,
        motion_channels=spec.profile.motion_channels,
        embedding_dim=16,
        seed=42,
    )
    train_features = pipeline.extract(spec.train)
    test_features = pipeline.extract(spec.test)

    # ------------------------------------------------------------------ #
    # 3. One declarative config describes the whole deployment.  In
    #    production this is a reviewed JSON file: cfg.to_json() /
    #    RuntimeConfig.from_json(path) round-trip it exactly.
    # ------------------------------------------------------------------ #
    config = RuntimeConfig(
        model=ModelConfig(
            action_dim=train_features.action_dim,
            interaction_dim=train_features.interaction_dim,
            action_hidden=48,
            interaction_hidden=24,
        ),
        training=TrainingConfig(epochs=15, batch_size=32, checkpoint_every=5, seed=42),
        serving=ServingConfig(max_batch_size=32),
        sequence_length=9,
        enable_updates=False,  # frozen model is enough for a first detection
    )
    print(f"Deployment config is {len(config.to_json())} bytes of reviewable JSON")

    # ------------------------------------------------------------------ #
    # 4. Train AOVLIS (CLSTM + REIA detector) and stand the service up.
    # ------------------------------------------------------------------ #
    runtime = Runtime.from_config(config).fit(train_features)
    print(f"Trained CLSTM with {runtime.model.num_parameters():,} parameters")
    print(f"Calibrated anomaly threshold T_a = {runtime.anomaly_threshold:.4f}")

    # ------------------------------------------------------------------ #
    # 5. Stream the live segments through the runtime.
    # ------------------------------------------------------------------ #
    detections = runtime.replay({"live": test_features})
    runtime.close()

    scores = np.array([d.score for d in detections])
    labels = test_features.labels[[d.segment_index for d in detections]]
    flagged = [d for d in detections if d.is_anomaly]
    print(f"\nScored {len(detections)} live segments; {len(flagged)} flagged as anomalies")
    print(f"AUROC against the simulator's ground truth: {auroc(labels, scores):.3f}")

    print("\nTop-5 most anomalous segments:")
    for detection in sorted(detections, key=lambda d: d.score, reverse=True)[:5]:
        truth = "ANOMALY" if test_features.labels[detection.segment_index] else "normal"
        print(
            f"  segment {detection.segment_index:4d}  REIA={detection.score:.4f} "
            f"(RE_I={detection.action_error:.4f}, RE_A={detection.interaction_error:.4f})  "
            f"ground truth: {truth}"
        )


if __name__ == "__main__":
    main()
