"""Quickstart: detect anomalies over a simulated live social video stream.

This example walks through the whole AOVLIS pipeline on a small simulated
influencer (live-commerce) stream:

1. simulate a training stream and a live test stream for the INF dataset;
2. extract action-recognition and audience-interaction features;
3. train the CLSTM model on the normal part of the training stream;
4. score the live stream with REIA and report the detected anomalies.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import AOVLIS, FeaturePipeline, auroc, load_dataset
from repro.utils.config import TrainingConfig


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Simulate an INF-style dataset (train + live test stream).
    # ------------------------------------------------------------------ #
    spec = load_dataset("INF", base_train_seconds=360, base_test_seconds=240, seed=42)
    print(f"Simulated dataset -> {spec.description}")

    # ------------------------------------------------------------------ #
    # 2. Build the feature pipeline (simulated ResNet50-I3D + interaction).
    # ------------------------------------------------------------------ #
    pipeline = FeaturePipeline(
        action_dim=100,
        motion_channels=spec.profile.motion_channels,
        embedding_dim=16,
        seed=42,
    )
    train_features = pipeline.extract(spec.train)
    test_features = pipeline.extract(spec.test)
    print(
        f"Features: action d1={train_features.action_dim}, "
        f"interaction d2={train_features.interaction_dim}, "
        f"{train_features.num_segments} training segments"
    )

    # ------------------------------------------------------------------ #
    # 3. Train AOVLIS (CLSTM + REIA detector).
    # ------------------------------------------------------------------ #
    model = AOVLIS(
        sequence_length=9,
        action_hidden=48,
        interaction_hidden=24,
        training=TrainingConfig(epochs=15, batch_size=32, checkpoint_every=5, seed=42),
    )
    model.fit(train_features)
    print(f"Trained CLSTM with {model.model.num_parameters():,} parameters")
    print(f"Calibrated anomaly threshold T_a = {model.anomaly_threshold:.4f}")

    # ------------------------------------------------------------------ #
    # 4. Detect anomalies over the live stream.
    # ------------------------------------------------------------------ #
    result = model.detect(test_features)
    labels = test_features.labels[result.segment_indices]
    detected = result.segment_indices[result.is_anomaly]
    print(f"\nScored {len(result)} live segments; {len(detected)} flagged as anomalies")
    print(f"AUROC against the simulator's ground truth: {auroc(labels, result.scores):.3f}")

    print("\nTop-5 most anomalous segments:")
    top = result.top(5)
    for segment_index in top:
        position = int(np.where(result.segment_indices == segment_index)[0][0])
        flag = "ANOMALY" if labels[position] else "normal"
        print(
            f"  segment {segment_index:4d}  REIA={result.scores[position]:.4f} "
            f"(RE_I={result.action_errors[position]:.4f}, "
            f"RE_A={result.interaction_errors[position]:.4f})  ground truth: {flag}"
        )


if __name__ == "__main__":
    main()
