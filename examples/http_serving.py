"""Serve the runtime over HTTP — ingest, backpressure, tenants, stats.

PR 6 adds a stdlib-only network front (:mod:`repro.server`): wire clients
POST JSON segments, an admission-controlled queue bounds what the process
will hold, one batcher thread turns admitted segments into
``Runtime.ingest_many`` calls (so HTTP ingest stays bitwise-identical to
driving the library directly), and detections stream back through a
poll/long-poll endpoint.  This example walks the whole surface:

1. ``Runtime.serve()`` — one call puts a fitted runtime behind a listener
   on an ephemeral port;
2. ``POST /v1/ingest`` / ``GET /v1/detections`` — batched wire ingest and a
   long poll that returns as soon as the batcher has scored the backlog;
3. admission control — a deliberately tiny queue answers an oversized burst
   with 429 + ``Retry-After`` while every accepted segment still scores;
4. multi-tenancy — two runtimes behind one listener via
   :class:`~repro.server.TenantRouter`; tenant ``a``'s drift-triggered
   version bump leaves tenant ``b`` untouched;
5. ``GET /stats`` — admission counters plus the same per-shard load numbers
   ``Runtime.load_stats()`` reports in-process.

Run with::

    python examples/http_serving.py
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np

from repro import (
    FeaturePipeline,
    ModelConfig,
    Runtime,
    RuntimeConfig,
    ServerConfig,
    ServingConfig,
    TrainingConfig,
    UpdateConfig,
    load_dataset,
)
from repro.server import RuntimeServer, TenantRouter

SEQUENCE_LENGTH = 7


def call(method: str, url: str, payload=None):
    """One JSON exchange; returns ``(status, body, headers)``."""
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8")), response.headers
    except urllib.error.HTTPError as error:
        with error:
            return error.code, json.loads(error.read().decode("utf-8")), error.headers


def wire_segments(features, start, stop, stream_id):
    """A slice of one stream as JSON-ready wire segments (floats are exact:
    ``json`` round-trips IEEE-754 doubles losslessly via ``repr``)."""
    return [
        {
            "stream": stream_id,
            "action": features.action[position].tolist(),
            "interaction": features.interaction[position].tolist(),
            "level": float(features.normalised_interaction[position]),
        }
        for position in range(start, stop)
    ]


def build_runtime(train, *, drift_threshold=0.9995) -> Runtime:
    config = RuntimeConfig(
        model=ModelConfig(
            action_dim=train.action_dim,
            interaction_dim=train.interaction_dim,
            action_hidden=32,
            interaction_hidden=16,
        ),
        training=TrainingConfig(epochs=4, batch_size=32, checkpoint_every=2, seed=7),
        serving=ServingConfig(num_shards=2, max_batch_size=16),
        update=UpdateConfig(buffer_size=60, drift_threshold=drift_threshold, update_epochs=4),
        sequence_length=SEQUENCE_LENGTH,
        server=ServerConfig(poll_interval_ms=10.0),
    )
    return Runtime.from_config(config).fit(train)


def main() -> None:
    spec = load_dataset("INF", base_train_seconds=180, base_test_seconds=150, seed=7)
    pipeline = FeaturePipeline(
        action_dim=60, motion_channels=spec.profile.motion_channels, seed=7
    )
    train = pipeline.extract(spec.train)
    live = pipeline.extract(spec.test)

    # ------------------------------------------------------------------ #
    # 1-2. Single tenant: serve, ingest over the wire, long-poll results.
    # ------------------------------------------------------------------ #
    runtime = build_runtime(train)
    with runtime.serve() as server:
        print(f"Serving version {runtime.model_version} at {server.url}")

        batch = wire_segments(live, 0, 40, "cam-0")
        status, body, _ = call("POST", f"{server.url}/v1/ingest", {"segments": batch})
        print(f"POST /v1/ingest: {status} accepted={body['accepted']}")

        # The batcher feeds the runtime on its own; a long poll returns as
        # soon as scored detections exist for the stream.
        status, body, _ = call(
            "GET", f"{server.url}/v1/detections?stream=cam-0&start=0&wait_ms=5000"
        )
        flagged = sum(d["is_anomaly"] for d in body["detections"])
        print(
            f"GET /v1/detections: {body['next']} detections "
            f"({flagged} anomalous), first at segment "
            f"{body['detections'][0]['segment_index']}"
        )

        # Validation happens at the door: non-finite features are a 400,
        # never a NaN inside the drift monitor.
        poisoned = dict(batch[0], action=[float("nan")] * live.action_dim)
        status, body, _ = call(
            "POST", f"{server.url}/v1/ingest", {"segments": [poisoned]}
        )
        print(f"POST with NaN features: {status} ({body['error']})")

        status, body, _ = call("GET", f"{server.url}/stats")
        shard_lines = ", ".join(
            f"shard {s['shard_index']}: {s['segments_scored']} segments"
            for s in body["tenants"]["default"]["shards"]
        )
        print(f"GET /stats: {shard_lines} — matches runtime.load_stats()\n")
    runtime.close()

    # ------------------------------------------------------------------ #
    # 3. Admission control: a tiny queue refuses overload, keeps the rest.
    # ------------------------------------------------------------------ #
    runtime = build_runtime(train)
    server = RuntimeServer(
        runtime, config=ServerConfig(max_pending=32, retry_after_seconds=1.0)
    ).start()
    status, body, _ = call(
        "POST",
        f"{server.url}/v1/ingest",
        {"segments": wire_segments(live, 0, 30, "burst")},
    )
    print(f"Burst of 30 into a 32-slot queue: {status}")
    status, body, headers = call(
        "POST",
        f"{server.url}/v1/ingest",
        {"segments": wire_segments(live, 30, 70, "burst")},
    )
    print(
        f"Burst of 40 more: {status} (Retry-After: {headers['Retry-After']}s) — "
        "refused whole, nothing half-enqueued"
    )
    server.drain()
    stats = server.admission.stats()
    print(
        f"Accepted {stats['accepted']}, rejected {stats['rejected']}; every "
        f"accepted segment was scored: {runtime.stats.segments_scored} "
        f"(= 30 - warmup {SEQUENCE_LENGTH})\n"
    )
    server.close()
    runtime.close()

    # ------------------------------------------------------------------ #
    # 4. Two tenants behind one listener, fully isolated.
    # ------------------------------------------------------------------ #
    # Tenant a gets a hair trigger so wire traffic drives its update loop;
    # tenant b would need the same drift evidence of its own to move.
    tenant_a = build_runtime(train, drift_threshold=0.99999)
    tenant_b = build_runtime(train)
    router = TenantRouter({"a": tenant_a, "b": tenant_b})
    with RuntimeServer(router, config=ServerConfig(poll_interval_ms=10.0)) as server:
        drifted = live.action.copy()
        drifted = np.roll(drifted, drifted.shape[1] // 4, axis=1)
        segments = [
            dict(segment, stream="a/cam-0", action=drifted[index].tolist())
            for index, segment in enumerate(
                wire_segments(live, 0, live.num_segments, "a/cam-0")
            )
        ]
        for start in range(0, len(segments), 64):
            call(
                "POST",
                f"{server.url}/v1/ingest",
                {"segments": segments[start : start + 64]},
            )
        call("POST", f"{server.url}/v1/drain")
        status, health, _ = call("GET", f"{server.url}/healthz")
        print(
            f"Tenant a drifted over the wire: versions {health['tenants']} — "
            "a's publishes never touch b"
        )
    tenant_a.close()
    tenant_b.close()


if __name__ == "__main__":
    main()
