"""Serve many concurrent live streams through the micro-batching scorer.

A production AOVLIS deployment watches hundreds of influencer streams at
once.  Scoring each incoming segment individually wastes the batched fused
inference engine, so the serving tier coalesces segments *across streams*
into micro-batches and runs one fused CLSTM forward per batch
(:mod:`repro.serving`).

This example:

1. trains one CLSTM on an INF-style stream and calibrates its threshold;
2. simulates several concurrent live streams from the same platform profile;
3. replays their segments through a :class:`~repro.serving.ScoringService`
   (round-robin arrival, micro-batches of 32, drift monitoring enabled);
4. reports per-stream detections, emitted incremental-update triggers, and
   the serving throughput against the naive one-segment-at-a-time loop.

Run with::

    python examples/multi_stream_serving.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import AOVLIS, FeaturePipeline, ScoringService, load_dataset, replay_streams
from repro.streams.generator import SocialStreamGenerator
from repro.utils.config import TrainingConfig, UpdateConfig


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Train and calibrate on one INF-style stream.
    # ------------------------------------------------------------------ #
    spec = load_dataset("INF", base_train_seconds=300, base_test_seconds=120, seed=7)
    pipeline = FeaturePipeline(action_dim=100, motion_channels=spec.profile.motion_channels, seed=7)
    train = pipeline.extract(spec.train)

    model = AOVLIS(
        sequence_length=9,
        action_hidden=48,
        interaction_hidden=24,
        training=TrainingConfig(epochs=10, batch_size=32, checkpoint_every=5, seed=7),
    )
    model.fit(train)
    print(f"Trained CLSTM on {train.num_segments} segments, T_a = {model.anomaly_threshold:.4f}\n")

    # ------------------------------------------------------------------ #
    # 2. Simulate concurrent live streams (same presenters, new footage).
    # ------------------------------------------------------------------ #
    generator = SocialStreamGenerator(spec.profile, seed=7)
    streams = {
        stream.name: pipeline.extract(stream)
        for stream in generator.generate_many(count=6, duration_seconds=150.0)
    }
    total_segments = sum(features.num_segments for features in streams.values())
    print(f"Serving {len(streams)} concurrent streams, {total_segments} segments total")

    # ------------------------------------------------------------------ #
    # 3. Replay through the micro-batching scoring service.
    # ------------------------------------------------------------------ #
    train_batch = train.sequences(model.sequence_length)
    service = ScoringService(
        model.detector,
        sequence_length=model.sequence_length,
        max_batch_size=32,
        update_config=UpdateConfig(buffer_size=150, drift_threshold=0.4),
        historical_hidden=model.model.hidden_states(
            train_batch.action_sequences, train_batch.interaction_sequences
        ),
    )
    detections = replay_streams(service, streams)

    print(
        f"Micro-batching: {service.stats.batches} batches, "
        f"mean batch size {service.stats.mean_batch_size:.1f}, "
        f"{service.stats.throughput():.0f} segments/s (scoring time only)\n"
    )

    for stream_id in streams:
        routed = service.detections(stream_id)
        anomalies = [d for d in routed if d.is_anomaly]
        print(f"  {stream_id:8s} {len(routed):4d} scored, {len(anomalies):3d} anomalies "
              f"at segments {[d.segment_index for d in anomalies[:6]]}")
    if service.update_triggers:
        for trigger in service.update_triggers:
            print(
                f"  drift trigger at segment {trigger.segment_index}: "
                f"similarity {trigger.similarity:.3f} over {trigger.buffered_segments} buffered segments"
            )
    else:
        print("  no incremental-update triggers (no drift on these streams)")

    # ------------------------------------------------------------------ #
    # 4. Compare with the naive per-segment serving loop.
    # ------------------------------------------------------------------ #
    some_stream = next(iter(streams.values()))
    batch = some_stream.sequences(model.sequence_length)
    start = time.perf_counter()
    for position in range(len(batch)):
        model.detector.score(batch.subset(np.array([position])))
    per_segment = (time.perf_counter() - start) / len(batch)
    micro_batched = 1.0 / service.stats.throughput() if service.stats.throughput() else float("inf")
    print(
        f"\nPer-segment loop: {per_segment * 1000:.2f} ms/segment; "
        f"micro-batched service: {micro_batched * 1000:.3f} ms/segment "
        f"({per_segment / micro_batched:.1f}x)"
    )


if __name__ == "__main__":
    main()
