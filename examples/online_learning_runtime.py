"""Close the online-learning loop: drift → in-service update → hot swap.

The paper's Section IV-D keeps the CLSTM fresh while a stream runs: segments
with low audience interaction are presumed normal and buffered, drift of
their hidden states triggers a retrain on the buffer, and the new model is
merged with the old one.  This example runs that loop entirely *inside* the
serving runtime:

1. train a CLSTM on an INF-style stream and publish it (version 1) into a
   versioned :class:`~repro.serving.ModelRegistry`;
2. attach an :class:`~repro.serving.UpdatePlane` to a sharded scoring
   service: every drift trigger retrains on the drained presumed-normal
   buffer, merges with the published model, re-calibrates the anomaly
   threshold ``T_a`` and publishes the result — an atomic version swap;
3. replay live streams whose style *drifts* halfway through (the action
   distribution is rotated), under a wall-clock flush deadline driven by a
   simulated clock;
4. show the loop closing: drift triggers, registry versions, re-calibrated
   thresholds, and which model version scored each detection — including
   the pinned (pre-swap) version of the very batch that triggered the
   update.

Run with::

    python examples/online_learning_runtime.py
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro import (
    AOVLIS,
    FeaturePipeline,
    ModelRegistry,
    ServingConfig,
    ShardedScoringService,
    load_dataset,
)
from repro.serving import ManualClock, replay_streams
from repro.streams.generator import SocialStreamGenerator
from repro.utils.config import TrainingConfig, UpdateConfig


def inject_drift(features, start_fraction: float = 0.5):
    """Rotate the action distribution of the tail of a stream.

    From ``start_fraction`` on, every segment's action feature is rolled by a
    quarter of its dimensions (and stays a distribution), which shifts the
    hidden-state population exactly like a presenter changing style.
    """
    action = features.action.copy()
    start = int(features.num_segments * start_fraction)
    action[start:] = np.roll(action[start:], action.shape[1] // 4, axis=1)
    return replace(features, action=action)


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Train, calibrate, publish version 1.
    # ------------------------------------------------------------------ #
    spec = load_dataset("INF", base_train_seconds=300, base_test_seconds=120, seed=7)
    pipeline = FeaturePipeline(action_dim=100, motion_channels=spec.profile.motion_channels, seed=7)
    train = pipeline.extract(spec.train)

    training = TrainingConfig(epochs=10, batch_size=32, checkpoint_every=5, seed=7)
    model = AOVLIS(
        sequence_length=9, action_hidden=48, interaction_hidden=24, training=training
    )
    model.fit(train)
    registry = ModelRegistry.from_detector(model.detector)
    print(
        f"Published version 1: T_a = {registry.latest().threshold:.4f}, "
        f"fused caches prewarmed = {registry.latest().fused_fresh()}\n"
    )

    # ------------------------------------------------------------------ #
    # 2. Sharded service with an attached update plane per shard.
    # ------------------------------------------------------------------ #
    train_batch = train.sequences(model.sequence_length)
    # Note on drift_threshold: the simulated INF streams are far more
    # stationary than real footage — the mean-pairwise-cosine statistic
    # (Eq. 17) stays ~0.999 even under the rotation below, so the paper's
    # tau_u = 0.4 would never fire here.  A demonstration threshold just
    # under 1.0 lets the full loop run: trigger -> retrain on the buffer ->
    # merge -> re-calibrate -> atomic version swap.
    update_config = UpdateConfig(buffer_size=120, drift_threshold=0.9995, update_epochs=8)
    clock = ManualClock()
    service = ShardedScoringService(
        registry,
        config=ServingConfig(num_shards=2, max_batch_size=32, max_batch_delay_ms=80.0),
        sequence_length=model.sequence_length,
        update_config=update_config,
        attach_update_planes=True,
        training_config=training,
        historical_hidden=model.model.hidden_states(
            train_batch.action_sequences, train_batch.interaction_sequences
        ),
        clock=clock,
    )

    # ------------------------------------------------------------------ #
    # 3. Replay drifting live streams at one segment / 50 ms per stream.
    # ------------------------------------------------------------------ #
    generator = SocialStreamGenerator(spec.profile, seed=7)
    streams = {
        stream.name: inject_drift(pipeline.extract(stream))
        for stream in generator.generate_many(count=4, duration_seconds=240.0)
    }
    total = sum(f.num_segments for f in streams.values())
    print(f"Replaying {len(streams)} drifting streams, {total} segments total")
    replay_streams(service, streams, clock=clock, interarrival_seconds=0.05)

    # ------------------------------------------------------------------ #
    # 4. The closed loop, observably.
    # ------------------------------------------------------------------ #
    print(
        f"\nServed {service.stats.segments_scored} segments in "
        f"{service.stats.batches} micro-batches "
        f"(mean batch {service.stats.mean_batch_size:.1f}, "
        f"{service.stats.throughput():.0f} segments/s scoring time)"
    )
    for trigger in service.update_triggers:
        print(
            f"  drift trigger at segment {trigger.segment_index}: similarity "
            f"{trigger.similarity:.3f}, {trigger.buffered_segments} buffered segments "
            f"from {len(trigger.stream_ids)} streams, scored by version {trigger.model_version}"
        )
    for report in service.update_reports:
        print(
            f"  update v{report.previous_version} -> v{report.version}: trained on "
            f"{report.samples} segments in {report.seconds:.2f}s, "
            f"T_a {report.previous_threshold:.4f} -> {report.threshold:.4f}"
        )
    if not service.update_reports:
        print("  (no drift detected — try a stronger rotation in inject_drift)")

    print(f"\nShard model versions: {dict(service.model_versions())}")
    for stream_id in streams:
        routed = service.detections(stream_id)
        by_version = {}
        for detection in routed:
            by_version[detection.model_version] = by_version.get(detection.model_version, 0) + 1
        anomalies = sum(1 for d in routed if d.is_anomaly)
        print(
            f"  {stream_id:8s} {len(routed):4d} scored ({anomalies:3d} anomalies), "
            f"detections per model version: {by_version}"
        )


if __name__ == "__main__":
    main()
