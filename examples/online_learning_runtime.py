"""Close the online-learning loop — and survive a crash — with one facade.

The paper's Section IV-D keeps the CLSTM fresh while a stream runs: segments
with low audience interaction are presumed normal and buffered, drift of
their hidden states triggers a retrain on the buffer, and the new model is
merged with the old one.  With the unified :class:`~repro.runtime.Runtime`
the whole loop is declarative:

1. describe the deployment as one :class:`~repro.runtime.RuntimeConfig`
   (model dims, training budget, sharded serving with a wall-clock flush
   deadline, drift-update parameters);
2. ``Runtime.from_config(cfg, clock=...).fit(train)`` trains, calibrates
   ``T_a`` and publishes version 1 into the versioned model registry;
3. replay live streams whose style *drifts* halfway through — every drift
   trigger retrains on the drained presumed-normal buffer, merges,
   re-calibrates and publishes: an atomic version swap under live traffic;
4. ``checkpoint()`` persists the full runtime (every retained version's
   weights, thresholds, session windows, drift monitor), and
   ``Runtime.from_checkpoint()`` resumes it — the crash-recovery path, with
   bitwise-identical detections on the replayed tail.

The deployment below also opts into the thread-parallel executor
(``ExecutorConfig(mode="parallel")``): ready shard batches are fanned out to
a worker pool whose fused forwards release the GIL, and the per-shard load
statistics printed at the end are the signal a rebalancer would consume.

For wiring the registry / update plane / sharded service by hand (custom
routers, one registry per shard), see ``examples/multi_stream_serving.py``.

Run with::

    python examples/online_learning_runtime.py
"""

from __future__ import annotations

import tempfile
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro import (
    ExecutorConfig,
    FeaturePipeline,
    ModelConfig,
    Runtime,
    RuntimeConfig,
    ServingConfig,
    TrainingConfig,
    UpdateConfig,
    load_dataset,
)
from repro.serving import ManualClock
from repro.streams.generator import SocialStreamGenerator


def inject_drift(features, start_fraction: float = 0.5):
    """Rotate the action distribution of the tail of a stream.

    From ``start_fraction`` on, every segment's action feature is rolled by a
    quarter of its dimensions (and stays a distribution), which shifts the
    hidden-state population exactly like a presenter changing style.
    """
    action = features.action.copy()
    start = int(features.num_segments * start_fraction)
    action[start:] = np.roll(action[start:], action.shape[1] // 4, axis=1)
    return replace(features, action=action)


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. One declarative config for the whole closed-loop deployment.
    # ------------------------------------------------------------------ #
    spec = load_dataset("INF", base_train_seconds=300, base_test_seconds=120, seed=7)
    pipeline = FeaturePipeline(action_dim=100, motion_channels=spec.profile.motion_channels, seed=7)
    train = pipeline.extract(spec.train)

    # Note on drift_threshold: the simulated INF streams are far more
    # stationary than real footage — the mean-pairwise-cosine statistic
    # (Eq. 17) stays ~0.999 even under the rotation below, so the paper's
    # tau_u = 0.4 would never fire here.  A demonstration threshold just
    # under 1.0 lets the full loop run: trigger -> retrain on the buffer ->
    # merge -> re-calibrate -> atomic version swap.
    config = RuntimeConfig(
        model=ModelConfig(
            action_dim=train.action_dim,
            interaction_dim=train.interaction_dim,
            action_hidden=48,
            interaction_hidden=24,
        ),
        training=TrainingConfig(epochs=10, batch_size=32, checkpoint_every=5, seed=7),
        serving=ServingConfig(num_shards=2, max_batch_size=32, max_batch_delay_ms=80.0),
        update=UpdateConfig(buffer_size=120, drift_threshold=0.9995, update_epochs=8),
        # Thread-parallel shard scoring; workers=2 matches num_shards.  With
        # one ingest thread and synchronous updates this is still fully
        # deterministic — and workers=1 would be bitwise-identical to serial.
        executor=ExecutorConfig(mode="parallel", workers=2),
        sequence_length=9,
    )

    # ------------------------------------------------------------------ #
    # 2. Train, calibrate, publish version 1, stand the service up.
    # ------------------------------------------------------------------ #
    clock = ManualClock()
    runtime = Runtime.from_config(config, clock=clock).fit(train)
    print(
        f"Published version 1: T_a = {runtime.anomaly_threshold:.4f}, "
        f"fused caches prewarmed = {runtime.registry.latest().fused_fresh()}\n"
    )

    # ------------------------------------------------------------------ #
    # 3. Replay drifting live streams at one segment / 50 ms per stream.
    # ------------------------------------------------------------------ #
    generator = SocialStreamGenerator(spec.profile, seed=7)
    streams = {
        stream.name: inject_drift(pipeline.extract(stream))
        for stream in generator.generate_many(count=4, duration_seconds=240.0)
    }
    total = sum(f.num_segments for f in streams.values())
    print(f"Replaying {len(streams)} drifting streams, {total} segments total")
    runtime.replay(streams, interarrival_seconds=0.05)

    # ------------------------------------------------------------------ #
    # 4. The closed loop, observably.
    # ------------------------------------------------------------------ #
    stats = runtime.stats
    print(
        f"\nServed {stats.segments_scored} segments in {stats.batches} micro-batches "
        f"(mean batch {stats.mean_batch_size:.1f}, "
        f"{stats.throughput():.0f} segments/s scoring time)"
    )
    for trigger in runtime.update_triggers:
        print(
            f"  drift trigger at segment {trigger.segment_index}: similarity "
            f"{trigger.similarity:.3f}, {trigger.buffered_segments} buffered segments "
            f"from {len(trigger.stream_ids)} streams, scored by version {trigger.model_version}"
        )
    for report in runtime.update_reports:
        print(
            f"  update v{report.previous_version} -> v{report.version}: trained on "
            f"{report.samples} segments in {report.seconds:.2f}s, "
            f"T_a {report.previous_threshold:.4f} -> {report.threshold:.4f}"
        )
    if not runtime.update_reports:
        print("  (no drift detected — try a stronger rotation in inject_drift)")

    print(f"\nShard model versions: {dict(runtime.service.model_versions())}")
    for shard in runtime.load_stats():
        print(
            f"  shard {shard.shard_index}: {shard.streams} streams, "
            f"queue depth {shard.queue_depth}, occupancy {shard.batch_occupancy:.2f}, "
            f"{shard.mean_batch_latency_ms:.1f} ms/batch"
        )
    for stream_id in streams:
        routed = runtime.detections(stream_id)
        by_version: dict[int, int] = {}
        for detection in routed:
            by_version[detection.model_version] = by_version.get(detection.model_version, 0) + 1
        anomalies = sum(1 for d in routed if d.is_anomaly)
        print(
            f"  {stream_id:8s} {len(routed):4d} scored ({anomalies:3d} anomalies), "
            f"detections per model version: {by_version}"
        )

    # ------------------------------------------------------------------ #
    # 5. Crash recovery: checkpoint, restore, keep serving.
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory() as tmp:
        directory = runtime.checkpoint(Path(tmp) / "aovlis-ckpt")
        files = sorted(p.name for p in directory.iterdir())
        print(f"\nCheckpointed {len(files)} files: {files}")
        restored = Runtime.from_checkpoint(directory, clock=ManualClock())
        print(
            f"Restored at version {restored.model_version} "
            f"(T_a = {restored.anomaly_threshold:.4f}); sessions, drift monitor "
            f"and queued requests resume exactly where the original stopped."
        )
        restored.close()
    runtime.close()  # drains queues and shuts the executor pool down


if __name__ == "__main__":
    main()
