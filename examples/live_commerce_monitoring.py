"""Live-commerce monitoring: streaming detection with incremental model updates.

The paper's motivating application is monitoring an influencer's product
showcase: when the presenter performs an attractive action and the chat
erupts, the platform wants to know immediately (soft advertisements, purchase
spikes), and the model must keep itself fresh as the show evolves.

This example simulates a long INF-style broadcast, processes it in half-hour
"chunks" as they arrive, and shows:

* online REIA scoring of each incoming chunk,
* ADOS-accelerated detection (bound filtering instead of exact JS everywhere),
* drift-triggered incremental model updates between chunks.

Run with::

    python examples/live_commerce_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import AOVLIS, FeaturePipeline, FilteredDetector, auroc
from repro.streams import SocialStreamGenerator, dataset_profile
from repro.utils.config import TrainingConfig, UpdateConfig


def main() -> None:
    profile = dataset_profile("INF")
    generator = SocialStreamGenerator(profile, seed=7)

    # A 6-minute "rehearsal" recording used for initial training, then a
    # 12-minute live broadcast that arrives in three chunks.
    rehearsal = generator.generate(360, name="rehearsal", seed=71)
    broadcast = generator.generate(720, name="broadcast", seed=72)

    pipeline = FeaturePipeline(action_dim=100, motion_channels=profile.motion_channels, seed=7)
    train_features = pipeline.extract(rehearsal)

    model = AOVLIS(
        sequence_length=9,
        action_hidden=48,
        interaction_hidden=24,
        training=TrainingConfig(epochs=15, batch_size=32, checkpoint_every=5, seed=7),
        update=UpdateConfig(buffer_size=60, drift_threshold=0.7, update_epochs=4),
    )
    model.fit(train_features)
    print(f"Initial model trained on {train_features.num_segments} rehearsal segments")

    chunk_seconds = broadcast.duration / 3
    for chunk_id in range(3):
        chunk_stream = broadcast.slice_time(chunk_id * chunk_seconds, (chunk_id + 1) * chunk_seconds)
        chunk = pipeline.extract(chunk_stream)

        # --- fast detection with ADOS bound filtering ------------------- #
        batch = chunk.sequences(model.sequence_length)
        filtered = FilteredDetector(model.detector).detect(batch)
        flagged = filtered.anomalies
        stages = filtered.stage_counts()
        labels = chunk.labels[filtered.segment_indices]
        scores_auroc = auroc(labels, np.array([o.score for o in filtered.outcomes])) if labels.sum() else float("nan")

        print(f"\n=== incoming chunk {chunk_id + 1} ({chunk.num_segments} segments) ===")
        print(f"  anomalies flagged: {len(flagged)}  (ground-truth anomalous segments: {labels.sum()})")
        print(f"  AUROC on this chunk: {scores_auroc:.3f}")
        print(
            "  ADOS filtering: "
            f"{filtered.filtering_power():.0%} of segments decided by bounds "
            f"({stages.get('exact', 0)} exact JS computations) — stages {stages}"
        )

        # --- incremental maintenance ------------------------------------ #
        decisions = model.process_incoming(chunk)
        triggered = [d for d in decisions if d.triggered]
        if triggered:
            print(
                f"  model drift detected (similarity {triggered[0].similarity:.3f}); "
                f"incremental update took {sum(d.update_seconds for d in triggered):.2f}s"
            )
        elif decisions:
            print(f"  no drift (similarity {decisions[-1].similarity:.3f}); model kept")
        else:
            print("  update buffer still filling; model kept")


if __name__ == "__main__":
    main()
