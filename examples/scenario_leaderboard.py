"""Adversarial scenario suite: stress-test detectors beyond the paper's datasets.

Production social video platforms are not stationary: flash crowds spike the
comment rate without an attractive action, coordinated raids flood negative
comments, influencers switch their whole behaviour regime mid-stream, fan-in
is heavy-tailed and wall clocks stall.  :mod:`repro.scenarios` makes each of
those a declarative, JSON-able :class:`~repro.scenarios.ScenarioConfig` and
sweeps every detector variant over them:

1. build a small scenario suite (stationary control + three adversarial);
2. ``run_scenario_suite`` — fit each variant on the scenario's clean
   training stream, score the perturbed test stream, rank by AUROC;
3. render the leaderboard (per-cell metrics, overall ranking, and the
   Eq. 17 cosine-vs-centered drift comparison);
4. replay one scenario through the *online* :class:`~repro.runtime.Runtime`
   with a skewed ``ManualClock`` via ``drive_runtime``.

Run with::

    python examples/scenario_leaderboard.py
"""

from __future__ import annotations

from repro import ScenarioConfig, drive_runtime, run_scenario_suite

TRAIN_SECONDS = 140.0
TEST_SECONDS = 100.0
SEED = 7


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. A compact scenario suite.  Every config serialises to JSON, so a
    #    scenario library can live in reviewed files next to the deployment
    #    config: ScenarioConfig.from_json(path) round-trips exactly.
    # ------------------------------------------------------------------ #
    scenarios = (
        ScenarioConfig(
            name="stationary", kind="stationary",
            train_seconds=TRAIN_SECONDS, test_seconds=TEST_SECONDS, seed=SEED,
        ),
        ScenarioConfig(
            name="flash_crowd", kind="flash_crowd", intensity=1.5,
            train_seconds=TRAIN_SECONDS, test_seconds=TEST_SECONDS, seed=SEED,
        ),
        ScenarioConfig(
            name="raid", kind="raid",
            train_seconds=TRAIN_SECONDS, test_seconds=TEST_SECONDS, seed=SEED,
        ),
        ScenarioConfig(
            name="regime_switch", kind="regime_switch", onset_fraction=0.5,
            train_seconds=TRAIN_SECONDS, test_seconds=TEST_SECONDS, seed=SEED,
        ),
    )
    print(f"Scenario library: {', '.join(s.name for s in scenarios)}")
    print(f"One config is {len(scenarios[1].to_json())} bytes of reviewable JSON\n")

    # ------------------------------------------------------------------ #
    # 2-3. Sweep a subset of the detector suite and render the leaderboard.
    # ------------------------------------------------------------------ #
    leaderboard = run_scenario_suite(
        scenarios=scenarios,
        variant_names=["LTR", "LSTM", "CLSTM-S", "CLSTM"],
    )
    print(leaderboard.render())

    best_variant, best_mean_rank, wins = leaderboard.overall[0]
    print(
        f"\nBest overall: {best_variant} "
        f"(mean rank {best_mean_rank:.2f}, wins {wins}/{len(leaderboard.scenario_names())})"
    )

    # ------------------------------------------------------------------ #
    # 4. The same scenarios drive the online runtime end-to-end — here the
    #    clock_skew scenario stalls the micro-batcher's wall clock for 20
    #    simulated seconds mid-stream, then runs it at double speed.
    # ------------------------------------------------------------------ #
    skewed = ScenarioConfig(
        name="clock_skew", kind="clock_skew",
        clock_stall_seconds=20.0, clock_rate=2.0,
        train_seconds=TRAIN_SECONDS, test_seconds=TEST_SECONDS, seed=SEED,
    )
    report = drive_runtime(skewed)
    print(
        f"\nOnline drive ({skewed.name}): ingested {report.segments_ingested} segments, "
        f"{report.num_detections} detections ({report.num_flagged} flagged), "
        f"simulated clock ended at {report.clock_end:.0f}s"
    )


if __name__ == "__main__":
    main()
