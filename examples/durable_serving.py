"""The durability plane: WAL-backed ingest, auto checkpoints, crash recovery.

An online detector that learns in service has state worth protecting: the
retained model versions, the calibrated threshold ``T_a``, every stream's
rolling window, the drift monitor's buffers.  ``DurabilityConfig`` turns all
of it into a durable deployment with three moving parts:

1. a **write-ahead log** — every ``ingest``/``ingest_many`` call is framed,
   CRC'd and fsynced to a WAL segment *before* it is scored, so an acked
   submission is never lost, even to SIGKILL;
2. an **auto-checkpoint policy** — every K records (and/or U published
   updates, and/or T seconds) the runtime writes a checkpoint into the
   durable store and prunes the WAL behind it.  Checkpoints are *deltas*:
   only model versions absent from the parent are re-serialised, with a
   periodic compaction back to a full checkpoint;
3. **crash recovery** — ``Runtime.recover(root)`` loads the latest
   checkpoint and replays the WAL tail through the scoring service, landing
   bitwise-identical to a process that never crashed.

The same counters feed a dependency-free Prometheus exporter: the HTTP tier
answers ``GET /metrics`` with exposition text any scraper ingests.

Run with::

    python examples/durable_serving.py
"""

from __future__ import annotations

import tempfile
import urllib.request
from pathlib import Path

import numpy as np

from repro import (
    DurabilityConfig,
    ExecutorConfig,
    ModelConfig,
    Runtime,
    RuntimeConfig,
    ServingConfig,
    TrainingConfig,
    UpdateConfig,
)
from repro.features.pipeline import FeaturePipeline
from repro.streams.generator import SocialStreamGenerator, StreamProfile


def training_features():
    profile = StreamProfile(
        name="DUR",
        motion_channels=8,
        normal_states=3,
        anomaly_rate=0.02,
        anomaly_duration=6.0,
        switch_probability=0.02,
        audience_reactivity=0.4,
        base_comment_rate=2.0,
        burst_gain=8.0,
        reaction_delay=1,
        interactivity=1.0,
        anomaly_visual_shift=0.2,
        distractor_rate=0.02,
    )
    stream = SocialStreamGenerator(profile, seed=11).generate(180.0, name="dur-train")
    pipeline = FeaturePipeline(action_dim=24, motion_channels=8, embedding_dim=6, seed=3)
    return pipeline.extract(stream)


def build_config(root: Path, features) -> RuntimeConfig:
    return RuntimeConfig(
        model=ModelConfig(
            action_dim=features.action_dim,
            interaction_dim=features.interaction_dim,
            action_hidden=16,
            interaction_hidden=8,
        ),
        training=TrainingConfig(epochs=3, batch_size=16, checkpoint_every=1, seed=0),
        serving=ServingConfig(num_shards=2, max_batch_size=8),
        # A demonstration drift threshold just under 1.0 (see
        # online_learning_runtime.py for why): the random live features below
        # push mean-cosine similarity low enough to publish mid-run, so the
        # delta checkpoints have a new version to persist.
        update=UpdateConfig(buffer_size=16, drift_threshold=0.9999, update_epochs=2),
        executor=ExecutorConfig(mode="serial"),
        sequence_length=5,
        durability=DurabilityConfig(
            directory=str(root),
            wal=True,
            wal_fsync_every=1,  # every acked record is durable
            checkpoint_every_records=40,
            delta=True,
            full_every=4,  # compact back to a full every 4th checkpoint
        ),
    )


def live_records(features, *, streams=2, segments=60, seed=99):
    rng = np.random.default_rng(seed)
    feeds = [
        (
            f"cam-{index}",
            rng.random((segments, features.action_dim)),
            rng.random((segments, features.interaction_dim)),
            rng.random(segments),
        )
        for index in range(streams)
    ]
    for position in range(segments):
        for name, action, interaction, levels in feeds:
            yield name, action[position], interaction[position], float(levels[position])


def main() -> None:
    features = training_features()
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "durable"

        # -------------------------------------------------------------- #
        # 1. A durable deployment: fit, take the initial full checkpoint.
        # -------------------------------------------------------------- #
        runtime = Runtime.from_config(build_config(root, features)).fit(features)
        runtime.checkpoint()
        print(
            f"Durable runtime up: version {runtime.model_version}, "
            f"T_a = {runtime.anomaly_threshold:.4f}, store at {root.name}/"
        )

        # -------------------------------------------------------------- #
        # 2. Live traffic.  Every record hits the WAL before the scorer;
        #    every 40th record the policy checkpoints and prunes the WAL.
        # -------------------------------------------------------------- #
        records = list(live_records(features))
        half = len(records) // 2
        for record in records[:half]:
            runtime.ingest(*record)
        stats = runtime.durability_stats()
        print(
            f"Ingested {half} records: WAL appended "
            f"{stats['wal']['records_appended']} records "
            f"({stats['wal']['bytes_appended']} bytes, "
            f"{stats['wal']['fsyncs']} fsyncs), "
            f"{stats['policy']['auto_checkpoints']} auto checkpoints, "
            f"latest ckpt-{stats['checkpoints']['latest_id']:06d} "
            f"(delta depth {stats['checkpoints']['delta_chain_depth']})"
        )

        # -------------------------------------------------------------- #
        # 3. Crash.  No drain, no close, the WAL segment left open — the
        #    runtime object is simply abandoned, as SIGKILL would leave it.
        # -------------------------------------------------------------- #
        crashed_version = runtime.model_version
        crashed_detections = {
            name: [(d.segment_index, d.score) for d in runtime.detections(name)]
            for name in ("cam-0", "cam-1")
        }
        del runtime
        print(f"\n-- crash -- (model was at version {crashed_version})")

        # -------------------------------------------------------------- #
        # 4. Recover: latest checkpoint + WAL tail replay, then keep going.
        # -------------------------------------------------------------- #
        recovered = Runtime.recover(root)
        print(
            f"Recovered at version {recovered.model_version}: replayed "
            f"{recovered.durability_stats()['replayed_records']} logged records "
            f"from the WAL tail"
        )
        for name, rows in crashed_detections.items():
            tail = [
                (d.segment_index, d.score) for d in recovered.detections(name)
            ][-3:]
            assert rows[-len(tail):] == tail, f"{name}: replay diverged from pre-crash"
        print("Replayed detections are bitwise-identical to the pre-crash run")
        for record in records[half:]:
            recovered.ingest(*record)
        recovered.drain()
        print(
            f"Finished the stream: version {recovered.model_version}, "
            f"{len(recovered.update_reports)} in-service updates after recovery, "
            f"{recovered.stats.segments_scored} segments scored since restore"
        )

        # -------------------------------------------------------------- #
        # 5. Observability: the same counters as Prometheus exposition.
        # -------------------------------------------------------------- #
        with recovered.serve() as server:
            with urllib.request.urlopen(f"{server.url}/metrics", timeout=30) as response:
                assert response.status == 200
                body = response.read().decode("utf-8")
        wanted = (
            "repro_model_version",
            "repro_wal_records_appended_total",
            "repro_checkpoints_written_total",
        )
        print("\nGET /metrics (excerpt):")
        for line in body.splitlines():
            if line.startswith(wanted):
                print(f"  {line}")
        recovered.close()


if __name__ == "__main__":
    main()
