"""E-learning scenario: anomaly detection over one-way lecture streams.

SPE/TED-style streams differ from live commerce: the speaker does not follow
the chat (one-way influence) and the audience is quieter, so the visual
channel alone is even less informative.  This example compares three detectors
on a simulated lecture stream:

* LSTM   — action features only (no audience),
* CLSTM-S — one-way coupling (speaker -> audience),
* CLSTM  — full mutual coupling (the AOVLIS model).

It prints per-method AUROC and the highlight moments each method would report
to an e-learning analytics dashboard.

Run with::

    python examples/lecture_stream_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import AOVLIS, FeaturePipeline, auroc, load_dataset
from repro.core.variants import CLSTMSingleCouplingDetector, LSTMOnlyDetector
from repro.utils.config import TrainingConfig


def main() -> None:
    spec = load_dataset("TED", base_train_seconds=360, base_test_seconds=240, seed=11)
    print(f"Simulated lecture dataset -> {spec.description}")

    pipeline = FeaturePipeline(action_dim=100, motion_channels=spec.profile.motion_channels, seed=11)
    train = pipeline.extract(spec.train)
    test = pipeline.extract(spec.test)

    training = TrainingConfig(epochs=15, batch_size=32, checkpoint_every=5, seed=11)
    methods = {
        "LSTM (video only)": LSTMOnlyDetector(sequence_length=9, hidden_size=48, training=training),
        "CLSTM-S (one-way)": CLSTMSingleCouplingDetector(
            sequence_length=9, action_hidden=48, interaction_hidden=24, training=training
        ),
        "CLSTM (AOVLIS)": AOVLIS(
            sequence_length=9, action_hidden=48, interaction_hidden=24, training=training
        ),
    }

    print(f"\n{'method':22s} {'AUROC':>7s}   top highlight segments")
    highlight_counts = {}
    for name, method in methods.items():
        method.fit(train)
        scored = method.score_stream(test)
        labels = scored.labels_from(test)
        value = auroc(labels, scored.scores)
        top = scored.segment_indices[np.argsort(scored.scores)[::-1][:5]]
        highlight_counts[name] = top
        print(f"{name:22s} {value:7.3f}   {', '.join(str(int(i)) for i in sorted(top))}")

    print(
        "\nSegments flagged by CLSTM but invisible to the video-only model are the\n"
        "moments where the lecture content triggered an audience reaction without a\n"
        "big visual change — exactly the anomalies the paper targets."
    )
    clstm_only = set(highlight_counts["CLSTM (AOVLIS)"].tolist()) - set(
        highlight_counts["LSTM (video only)"].tolist()
    )
    print(f"CLSTM-only highlights: {sorted(int(i) for i in clstm_only)}")


if __name__ == "__main__":
    main()
