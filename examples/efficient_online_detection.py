"""Efficiency deep-dive: ADG bounds, ADOS filtering and their filtering power.

Section V of the paper accelerates online detection by avoiding the exact
400-dimensional Jensen–Shannon computation whenever a cheaper bound can decide
a segment.  This example trains one CLSTM on a TWI-style stream (the paper's
largest, most chat-heavy dataset), then compares four detection strategies:

* exact scoring without bounds,
* the L1-based JS bounds alone,
* L1 bounds + the ADG group bound,
* ADOS (adaptive bound selection).

It reports per-segment detection time, the filtering power of each bound and
verifies that every strategy reaches exactly the same detection decisions.

Run with::

    python examples/efficient_online_detection.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import AOVLIS, FeaturePipeline, FilteredDetector, load_dataset
from repro.optimization.filtering import evaluate_filtering_power
from repro.utils.config import TrainingConfig


def main() -> None:
    spec = load_dataset("TWI", base_train_seconds=240, base_test_seconds=180, seed=3)
    pipeline = FeaturePipeline(action_dim=200, motion_channels=spec.profile.motion_channels, seed=3)
    train = pipeline.extract(spec.train)
    test = pipeline.extract(spec.test)

    model = AOVLIS(
        sequence_length=9,
        action_hidden=48,
        interaction_hidden=24,
        training=TrainingConfig(epochs=10, batch_size=32, checkpoint_every=5, seed=3),
    )
    model.fit(train)
    batch = test.sequences(model.sequence_length)
    print(f"Trained on {train.num_segments} segments; scoring {len(batch)} live segments\n")

    strategies = {
        "No bound (exact)": dict(use_l1_bounds=False, use_adg_bound=False, adaptive=False),
        "JSmin + JSmax": dict(use_l1_bounds=True, use_adg_bound=False, adaptive=False),
        "JSmin + JSmax + RE_G": dict(use_l1_bounds=True, use_adg_bound=True, adaptive=False),
        "ADOS (adaptive)": dict(use_l1_bounds=True, use_adg_bound=True, adaptive=True),
    }

    reference_decisions = None
    print(f"{'strategy':24s} {'ms/segment':>11s} {'filtered':>9s} {'exact JS calls':>15s}")
    for name, flags in strategies.items():
        detector = FilteredDetector(model.detector, **flags)
        start = time.perf_counter()
        result = detector.detect(batch)
        elapsed = (time.perf_counter() - start) / max(len(batch), 1) * 1000.0
        decisions = result.decisions
        if reference_decisions is None:
            reference_decisions = decisions
        agreement = bool(np.array_equal(decisions, reference_decisions))
        print(
            f"{name:24s} {elapsed:11.3f} {result.filtering_power():9.1%} "
            f"{result.exact_computations():15d}   decisions match exact: {agreement}"
        )

    print("\nFiltering power of each bound (fraction of segments it can decide alone):")
    report = evaluate_filtering_power(model.detector, batch)
    for bound_name, power in report.as_dict().items():
        print(f"  {bound_name:20s} {power:6.1%}")


if __name__ == "__main__":
    main()
